// Event-tracing subsystem (obs/trace.hpp): ring-buffer recording semantics,
// rank binding to the simulated clock, cross-rank flow stitching, Perfetto
// JSON export analyzed by the gpumip-trace engine, and the headline
// record/replay property — a fuzzed schedule replayed through
// GPUMIP_SCHEDULE_REPLAY yields a bit-identical per-rank simulated timeline
// (check/schedule_check.hpp::check_trace_replay_equality).
//
// Tests call the trace functions directly (not the GPUMIP_TRACE_* macros),
// so they run identically in OBS-on and OBS-off builds; the macro on/off
// contract itself is proven by scripts/check.sh gate 6 (string absence in
// the OFF binary).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analyze.hpp"
#include "check/schedule_check.hpp"
#include "obs/trace.hpp"
#include "parallel/simmpi.hpp"
#include "parallel/supervisor.hpp"
#include "problems/generators.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace gpumip::obs::trace {
namespace {

mip::MipModel test_mip(std::uint64_t seed) {
  Rng rng(seed);
  problems::RandomMipConfig cfg;
  cfg.rows = 9;
  cfg.cols = 15;
  cfg.bound = 4.0;
  return problems::random_mip(cfg, rng);
}

// ---------------- ring semantics ----------------

TEST(TraceRing, OverflowDropsOldestAndCountsExactly) {
  reset();
  constexpr std::uint64_t kExtra = 100;
  for (std::uint64_t i = 0; i < kRingCapacity + kExtra; ++i) {
    instant("gpumip.test.ring", i);
  }
  EXPECT_EQ(dropped(), kExtra);  // one counted loss per overwritten event

  const std::vector<TraceEvent> events = snapshot();
  ASSERT_EQ(events.size(), kRingCapacity);  // retained window is exactly full
  // Overwrite-oldest: the retained window is the LAST kRingCapacity events,
  // in recording order.
  EXPECT_EQ(events.front().arg, kExtra);
  EXPECT_EQ(events.back().arg, kRingCapacity + kExtra - 1);
  for (std::size_t i = 1; i < events.size(); ++i) {
    ASSERT_EQ(events[i].arg, events[i - 1].arg + 1);
  }
}

TEST(TraceRing, ResetClearsEventsAndDropCount) {
  reset();
  for (std::uint64_t i = 0; i < kRingCapacity + 5; ++i) instant("gpumip.test.ring", i);
  ASSERT_GT(dropped(), 0u);
  reset();
  EXPECT_EQ(dropped(), 0u);
  EXPECT_TRUE(snapshot().empty());
}

TEST(TraceSpans, NestLifoAndEndRecallsTheOpenName) {
  reset();
  begin("gpumip.test.outer", 7);
  begin("gpumip.test.inner", 8);
  end();  // no name: recalled from the span stack
  end();
  const std::vector<TraceEvent> events = snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, EventKind::kBegin);
  EXPECT_EQ(events[0].name_view(), "gpumip.test.outer");
  EXPECT_EQ(events[0].arg, 7u);
  EXPECT_EQ(events[1].name_view(), "gpumip.test.inner");
  EXPECT_EQ(events[2].kind, EventKind::kEnd);
  EXPECT_EQ(events[2].name_view(), "gpumip.test.inner");  // LIFO
  EXPECT_EQ(events[3].name_view(), "gpumip.test.outer");
}

TEST(TraceSpans, UnbalancedEndIsRecordedNotFatal) {
  reset();
  end();
  const std::vector<TraceEvent> events = snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, EventKind::kEnd);
  EXPECT_EQ(events[0].name_view(), "unbalanced");
}

TEST(TraceEvents, CompleteCarriesLaneAndExplicitInterval) {
  reset();
  complete("gpumip.test.xfer", Lane::kH2D, 1.5, 0.25, 4096);
  const std::vector<TraceEvent> events = snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, EventKind::kComplete);
  EXPECT_EQ(events[0].lane, Lane::kH2D);
  EXPECT_TRUE(events[0].sim_time);  // explicit intervals live on the sim clock
  EXPECT_EQ(events[0].ts, 1.5);
  EXPECT_EQ(events[0].dur, 0.25);
  EXPECT_EQ(events[0].arg, 4096u);
}

TEST(TraceEvents, LongNamesAreTruncatedNotOverrun) {
  reset();
  const std::string longname(3 * TraceEvent::kNameCapacity, 'x');
  instant(longname, 0);
  const std::vector<TraceEvent> events = snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name_view().size(), TraceEvent::kNameCapacity);
}

// ---------------- rank binding & clocks ----------------

TEST(TraceBinding, BoundThreadStampsSimClockUnboundStampsWall) {
  reset();
  ASSERT_EQ(bound_rank(), -1);
  double clock = 2.5;
  {
    const RankBinding binding(3, &clock);
    EXPECT_EQ(bound_rank(), 3);
    instant("gpumip.test.bound", 1);
    clock = 3.75;
    instant("gpumip.test.bound", 2);
  }
  EXPECT_EQ(bound_rank(), -1);
  instant("gpumip.test.unbound", 3);

  const std::vector<TraceEvent> events = snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_TRUE(events[0].sim_time);
  EXPECT_EQ(events[0].rank, 3);
  EXPECT_EQ(events[0].ts, 2.5);  // the bound clock, bit-exact
  EXPECT_EQ(events[1].ts, 3.75);
  EXPECT_FALSE(events[2].sim_time);  // binding restored on scope exit
  EXPECT_EQ(events[2].rank, -1);
}

TEST(TraceFlows, KeyIsStableAndSeparatesRunsEndpointsAndSequences) {
  const std::uint64_t base = flow_key(1, 0, 2, 5);
  EXPECT_EQ(flow_key(1, 0, 2, 5), base);  // pure function
  std::set<std::uint64_t> keys{base,
                               flow_key(2, 0, 2, 5),   // another world
                               flow_key(1, 1, 2, 5),   // another source
                               flow_key(1, 0, 3, 5),   // another destination
                               flow_key(1, 0, 2, 6)};  // next message
  EXPECT_EQ(keys.size(), 5u);
}

// ---------------- simmpi integration: flows under fuzzed schedules --------

#ifdef GPUMIP_OBS_ENABLED
// Every send must produce exactly one flow-start and, once received, exactly
// one matching flow-end, whatever delivery order the fuzzer picks. (The
// simmpi instrumentation records through the GPUMIP_TRACE_* macros, so this
// and the following integration tests need the OBS-on build; the unit tests
// above exercise the always-compiled function API directly.)
TEST(TraceFlows, SendRecvPairsMatchUnderFuzzedSchedules) {
  constexpr int kPerSender = 20;
  for (const std::uint64_t seed : {3u, 99991u}) {
    reset();
    parallel::RunOptions options;
    options.schedule.fuzz = true;
    options.schedule.seed = seed;
    parallel::run_ranks(
        3,
        [&](parallel::Comm& comm) {
          if (comm.rank() < 2) {
            for (int i = 0; i < kPerSender; ++i) comm.send(2, 1, std::span<const std::byte>{});
            comm.barrier();
          } else {
            comm.barrier();
            for (int i = 0; i < 2 * kPerSender; ++i) comm.recv();
          }
        },
        options);

    std::map<std::uint64_t, int> starts;
    std::map<std::uint64_t, int> ends;
    for (const TraceEvent& ev : snapshot()) {
      if (ev.kind == EventKind::kFlowStart) {
        EXPECT_EQ(ev.name_view(), "gpumip.simmpi.msg");
        ++starts[ev.flow];
      } else if (ev.kind == EventKind::kFlowEnd) {
        ++ends[ev.flow];
      }
    }
    // Barrier traffic also flows; the send/recv pairs are the floor.
    EXPECT_GE(starts.size(), static_cast<std::size_t>(2 * kPerSender)) << "seed " << seed;
    EXPECT_EQ(starts, ends) << "seed " << seed;  // every arrow has both halves
    for (const auto& [id, count] : starts) {
      EXPECT_EQ(count, 1) << "flow id reused, seed " << seed;
      static_cast<void>(id);
    }
  }
}

// ---------------- export -> analyzer round trip ----------------

// A supervised solve's exported trace must parse as Chrome trace JSON and
// analyze as NON-trivial: >= 2 ranks with events, every flow matched, a
// cross-rank critical path, positive makespan — the same bar scripts/
// check.sh gate 9 holds the committed fixture to.
TEST(TraceExport, SupervisedSolveAnalyzesNonTrivially) {
  reset();
  const mip::MipModel m = test_mip(17);
  parallel::SupervisorOptions opts;
  opts.workers = 2;
  opts.worker_node_budget = 10;
  opts.ramp_up_nodes = 8;
  opts.mip.enable_cuts = false;
  const parallel::SupervisorResult r = parallel::solve_supervised(m, opts);
  ASSERT_EQ(r.result.status, mip::MipStatus::Optimal);

  std::string error;
  tracetool::Trace trace;
  ASSERT_TRUE(tracetool::parse_trace(to_json(), trace, error)) << error;
  EXPECT_EQ(trace.sim_pid, 1);

  const tracetool::Report report = tracetool::analyze(trace);
  EXPECT_EQ(tracetool::verify_nontrivial(report), "");
  EXPECT_GE(report.ranks.size(), 3u);  // supervisor + 2 workers
  EXPECT_GT(report.flows_total, 0u);
  EXPECT_EQ(report.flows_matched, report.flows_total);
  EXPECT_FALSE(report.critical_path.empty());
  EXPECT_GT(report.makespan_seconds, 0.0);
  EXPECT_NEAR(report.makespan_seconds, r.makespan, 1e-9);
}

// ---------------- the headline property: replay equality ----------------

TEST(TraceReplay, FuzzedScheduleReplaysToBitIdenticalSimTimeline) {
  const mip::MipModel m = test_mip(23);
  parallel::SupervisorOptions opts;
  opts.workers = 3;
  opts.worker_node_budget = 10;
  opts.ramp_up_nodes = 10;
  opts.mip.enable_cuts = false;

  parallel::DeliveryTrace schedule;
  opts.schedule.fuzz = true;
  opts.schedule.seed = 42;
  opts.schedule.record = &schedule;
  reset();
  parallel::SupervisorResult first = parallel::solve_supervised(m, opts);
  ASSERT_EQ(first.result.status, mip::MipStatus::Optimal);
  ASSERT_FALSE(schedule.empty());
  const std::vector<TraceEvent> recorded = snapshot();

  opts.schedule.fuzz = false;
  opts.schedule.seed = 0;
  opts.schedule.replay = &schedule;
  opts.schedule.record = nullptr;
  reset();  // rings are reused; isolate the two timelines
  parallel::SupervisorResult second = parallel::solve_supervised(m, opts);
  ASSERT_EQ(second.result.status, mip::MipStatus::Optimal);
  const std::vector<TraceEvent> replayed = snapshot();

  ASSERT_FALSE(recorded.empty());
  EXPECT_NO_THROW(check::check_trace_replay_equality(recorded, replayed));
}

TEST(TraceReplay, EqualityCheckerFlagsDivergentTimelines) {
  const mip::MipModel m = test_mip(23);
  parallel::SupervisorOptions opts;
  opts.workers = 2;
  opts.worker_node_budget = 8;
  opts.ramp_up_nodes = 8;  // force real dispatch: ramp-up alone must not finish
  opts.mip.enable_cuts = false;
  reset();
  parallel::solve_supervised(m, opts);
  const std::vector<TraceEvent> run = snapshot();
  bool any_rank_event = false;
  for (const TraceEvent& ev : run) any_rank_event |= ev.sim_time && ev.rank >= 0;
  ASSERT_TRUE(any_rank_event);

  // Missing ranks.
  EXPECT_THROW(check::check_trace_replay_equality(run, {}), Error);

  // Same ranks, one event's payload off by one.
  std::vector<TraceEvent> tampered = run;
  for (TraceEvent& ev : tampered) {
    if (ev.sim_time && ev.rank >= 0 && ev.name_view() != "gpumip.simmpi.recv.wait") {
      ++ev.arg;
      break;
    }
  }
  EXPECT_THROW(check::check_trace_replay_equality(run, tampered), Error);
}
#endif  // GPUMIP_OBS_ENABLED

// ---------------- export plumbing ----------------

TEST(TraceExport, UnwritablePathThrowsIoError) {
  reset();
  instant("gpumip.test.export", 0);
  try {
    export_json("/nonexistent-gpumip-dir/trace.json");
    FAIL() << "export to an unwritable path did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIoError);
  }
}

TEST(TraceExport, ExportIfRequestedHonorsTheEnvironment) {
  reset();
  instant("gpumip.test.export", 1);
  ::unsetenv("GPUMIP_TRACE_OUT");
  EXPECT_EQ(export_if_requested(), "");

  const std::string path = testing::TempDir() + "gpumip_test_trace_out.json";
  ::setenv("GPUMIP_TRACE_OUT", path.c_str(), 1);
  EXPECT_EQ(export_if_requested(), path);
  ::unsetenv("GPUMIP_TRACE_OUT");

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  tracetool::Trace trace;
  EXPECT_TRUE(tracetool::parse_trace(buffer.str(), trace, error)) << error;
  EXPECT_FALSE(trace.events.empty());
}

TEST(TraceExport, MalformedDocumentsAreRejectedByTheAnalyzer) {
  std::string error;
  tracetool::Trace trace;
  EXPECT_FALSE(tracetool::parse_trace("{\"traceEvents\": 7}", trace, error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(tracetool::parse_trace("{\"traceEvents\": [", trace, error));
  EXPECT_FALSE(tracetool::parse_trace("", trace, error));
}

}  // namespace
}  // namespace gpumip::obs::trace
