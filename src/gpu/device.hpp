// Simulated GPU device: memory arena, streams, events, transfer engines,
// and a kernel scheduler that charges simulated time.
//
// Semantics: enqueued work executes its host-side effect immediately (data
// is always up to date when the enqueueing call returns), while the *cost*
// is charged to an event-driven timeline that models
//   * one copy engine per direction (H2D / D2H transfers serialize),
//   * up to `parallel_slots` kernels overlapping across streams,
//   * FIFO ordering within a stream, arbitrary overlap across streams.
// `synchronize()` advances the device clock to the completion of all
// enqueued work and returns it. This reproduces the scheduling behaviour
// the paper's sections 5.1-5.5 reason about (stream concurrency, batched
// launches, transfer round trips) without physical hardware.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <span>
#include <string>
#include <vector>

#include "gpu/cost_model.hpp"
#include "support/error.hpp"

namespace gpumip::gpu {

class Device;

/// RAII handle to a span of simulated device memory. Move-only; returns its
/// bytes to the device on destruction. Backed by host storage so kernels
/// (which run on the host in this simulator) can touch the data directly.
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  ~DeviceBuffer();
  DeviceBuffer(DeviceBuffer&& other) noexcept;
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept;
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  bool valid() const noexcept { return device_ != nullptr; }
  std::size_t size_bytes() const noexcept { return storage_.size(); }
  Device* device() const noexcept { return device_; }
  const std::string& label() const noexcept { return label_; }
  /// Ledger id of this allocation (0 when invalid/moved-from).
  std::uint64_t alloc_id() const noexcept { return alloc_id_; }

  /// Typed view of the buffer contents (device-side data). Only kernel
  /// bodies and the transfer engine should touch this.
  template <typename T>
  std::span<T> as() {
    return {reinterpret_cast<T*>(storage_.data()), storage_.size() / sizeof(T)};
  }
  template <typename T>
  std::span<const T> as() const {
    return {reinterpret_cast<const T*>(storage_.data()), storage_.size() / sizeof(T)};
  }

 private:
  friend class Device;
  DeviceBuffer(Device* device, std::size_t bytes, std::string label, std::uint64_t alloc_id);
  void release() noexcept;

  Device* device_ = nullptr;
  std::vector<std::byte> storage_;
  std::string label_;
  std::uint64_t alloc_id_ = 0;
};

/// Identifies a stream on a device. Stream 0 always exists.
using StreamId = int;

/// A point on a stream's timeline, usable for cross-stream ordering.
struct Event {
  double ready_time = 0.0;
};

/// Aggregate statistics a device keeps about the work it has run.
struct DeviceStats {
  std::uint64_t bytes_h2d = 0;
  std::uint64_t bytes_d2h = 0;
  std::uint64_t transfers_h2d = 0;
  std::uint64_t transfers_d2h = 0;
  std::uint64_t kernels = 0;
  double kernel_seconds = 0.0;    ///< sum of individual kernel durations
  double transfer_seconds = 0.0;  ///< sum of individual transfer durations
  std::uint64_t allocated_bytes = 0;
  std::uint64_t peak_allocated_bytes = 0;
  std::uint64_t allocations = 0;
  std::uint64_t double_frees = 0;  ///< frees of ids not live in the ledger
};

/// One simulated accelerator.
///
/// Every allocation is recorded in a ledger keyed by a monotonically
/// increasing id; frees must match a live entry. audit() proves the ledger
/// is empty (no leaked blocks) and that no double-free was ever recorded —
/// the device-memory teardown check of the analysis layer (check/).
class Device {
 public:
  explicit Device(CostModelConfig config = {}, int id = 0);
  ~Device();

  int id() const noexcept { return id_; }
  const CostModelConfig& config() const noexcept { return config_; }
  const DeviceStats& stats() const noexcept { return stats_; }

  std::uint64_t free_bytes() const noexcept {
    return config_.memory_bytes - stats_.allocated_bytes;
  }

  /// Allocates device memory; throws DeviceOutOfMemory when over capacity.
  [[nodiscard]] DeviceBuffer alloc(std::size_t bytes, std::string label = "");

  /// Allocates a buffer of `count` doubles.
  [[nodiscard]] DeviceBuffer alloc_doubles(std::size_t count, std::string label = "");

  /// Creates an additional stream and returns its id.
  StreamId create_stream();
  int stream_count() const noexcept { return static_cast<int>(streams_.size()); }

  /// Copies host -> device. Charges the H2D copy engine.
  void copy_h2d(StreamId stream, DeviceBuffer& dst, const void* src, std::size_t bytes,
                std::size_t dst_offset = 0);

  /// Copies device -> host. Charges the D2H copy engine.
  void copy_d2h(StreamId stream, const DeviceBuffer& src, void* dst, std::size_t bytes,
                std::size_t src_offset = 0);

  /// Convenience typed copies for doubles.
  void upload(StreamId stream, DeviceBuffer& dst, std::span<const double> src,
              std::size_t dst_offset_doubles = 0);
  void download(StreamId stream, const DeviceBuffer& src, std::span<double> dst,
                std::size_t src_offset_doubles = 0);

  /// Launches a kernel: runs `body` immediately for its data effect and
  /// charges `cost` to the stream's timeline through the kernel scheduler.
  void launch(StreamId stream, const KernelCost& cost, const std::function<void()>& body);

  /// Records an event capturing the stream's current frontier.
  Event record(StreamId stream);

  /// Makes `stream` wait until `event` (cross-stream dependency).
  void wait(StreamId stream, const Event& event);

  /// Blocks (logically) until all enqueued work completes; advances and
  /// returns the device clock.
  double synchronize();

  /// Current device clock (time of last synchronize()).
  double now() const noexcept { return clock_; }

  /// Completion frontier of one stream without synchronizing the device.
  double stream_clock(StreamId stream) const;

  /// Zeroes the activity statistics (allocation accounting is preserved)
  /// and rewinds all timelines; used between benchmark phases.
  void reset_stats();

  // ---- memory ledger audit ----

  /// Number of live (not yet freed) allocations in the ledger.
  std::size_t live_allocations() const noexcept { return ledger_.size(); }

  /// Throws Error(kInternal) when any block is still live (leak at
  /// teardown) or a double-free was recorded; no-op on a clean ledger.
  void audit() const;

  /// Fault-injection hook for ledger tests: frees ledger entry `id` as if a
  /// buffer destructor ran. A second call with the same id is recorded as a
  /// double-free (audit() then throws).
  void inject_free(std::uint64_t id, std::size_t bytes) noexcept { on_free(id, bytes); }

 private:
  friend class DeviceBuffer;
  void on_free(std::uint64_t alloc_id, std::size_t bytes) noexcept;
  void validate_stream(StreamId stream) const;

  /// Returns the start time the kernel scheduler grants a kernel that
  /// becomes ready at `ready`: it must also find a free slot.
  double acquire_kernel_slot(double ready, double duration);

  struct LedgerEntry {
    std::size_t bytes = 0;
    std::string label;
  };

  CostModelConfig config_;
  int id_ = 0;
  DeviceStats stats_;
  double clock_ = 0.0;
  // Ordered by allocation id so the leak report (destructor warning,
  // reset_stats error) lists blocks deterministically — replay-identical
  // runs must produce byte-identical diagnostics (gpumip-lint R15).
  std::map<std::uint64_t, LedgerEntry> ledger_;
  std::uint64_t next_alloc_id_ = 1;

  std::vector<double> streams_;  // per-stream completion frontier
  double h2d_engine_ = 0.0;      // copy engine availability
  double d2h_engine_ = 0.0;
  // End times of kernels currently occupying the `parallel_slots` slots.
  std::priority_queue<double, std::vector<double>, std::greater<double>> slot_ends_;
};

}  // namespace gpumip::gpu
