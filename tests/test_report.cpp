// Tests for the gpumip-report engine (tools/gpumip-report/report.hpp):
// document parsing (metrics v1/v2, bench baselines, time series), the
// claim-category mapping with its exclusion list, single-run profiles,
// two-run attribution ranking, and the live round trip — a real metrics
// export from the registry parsed back and attributed.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "report.hpp"

namespace gpumip {
namespace {

using reporttool::Attribution;
using reporttool::BenchDoc;
using reporttool::MetricsSnapshot;
using reporttool::Profile;
using reporttool::TimeSeries;

BenchDoc one_bench(std::map<std::string, double> counters,
                   std::map<std::string, double> gauges = {}) {
  BenchDoc doc;
  MetricsSnapshot snap;
  snap.counters = std::move(counters);
  snap.gauges = std::move(gauges);
  snap.enabled = true;
  doc.benches["bench"] = std::move(snap);
  return doc;
}

TEST(ReportParse, MetricsV1AndV2BothDecode) {
  const std::string v1 = R"({
    "schema": "gpumip.metrics.v1", "enabled": true,
    "counters": {"gpumip.mip.nodes": 10}, "gauges": {}, "histograms": {}
  })";
  const std::string v2 = R"({
    "schema": "gpumip.metrics.v2", "enabled": true,
    "families": ["gpumip.lp.solves{method}"],
    "counters": {"gpumip.lp.solves{method=pdhg}": 3}, "gauges": {},
    "histograms": {"gpumip.lp.solve.seconds{method=pdhg}":
      {"count": 3, "sum": 0.3, "min": 0.1, "max": 0.1, "mean": 0.1,
       "p50": 0.1, "p90": 0.1, "p99": 0.1}}
  })";
  MetricsSnapshot snap;
  std::string error;
  ASSERT_TRUE(reporttool::parse_metrics(v1, snap, error)) << error;
  EXPECT_DOUBLE_EQ(snap.counters.at("gpumip.mip.nodes"), 10.0);
  ASSERT_TRUE(reporttool::parse_metrics(v2, snap, error)) << error;
  EXPECT_DOUBLE_EQ(snap.counters.at("gpumip.lp.solves{method=pdhg}"), 3.0);
  EXPECT_DOUBLE_EQ(snap.histograms.at("gpumip.lp.solve.seconds{method=pdhg}").first, 3.0);

  EXPECT_FALSE(reporttool::parse_metrics(
      R"({"schema": "gpumip.metrics.v3", "counters": {}})", snap, error));
  EXPECT_FALSE(reporttool::parse_metrics("[1, 2]", snap, error));
}

TEST(ReportCategories, MappingAndExclusions) {
  EXPECT_EQ(reporttool::category_of("gpumip.gpu.xfer.h2d.bytes"), "transfer");
  EXPECT_EQ(reporttool::category_of("gpumip.lp.ops.refactor"), "c3_basis");
  EXPECT_EQ(reporttool::category_of("gpumip.mip.cuts.rounds"), "c4_cuts");
  EXPECT_EQ(reporttool::category_of("gpumip.gpu.alloc.calls"), "c5_memory");
  EXPECT_EQ(reporttool::category_of("gpumip.mip.reuse.hit_rate"), "c5_memory");
  EXPECT_EQ(reporttool::category_of("gpumip.lp.method.chosen{method=pdhg}"), "c6_method");
  EXPECT_EQ(reporttool::category_of("gpumip.lp.batch.waves{method=simplex}"), "c7_batch");
  EXPECT_EQ(reporttool::category_of("gpumip.supervisor.dispatched{rank=2}"), "c8_scale");
  EXPECT_EQ(reporttool::category_of("gpumip.mip.incumbents"), "other");
  // Exclusions: the sampler can never trip attribution, nor can
  // host-timing noise.
  EXPECT_EQ(reporttool::category_of("gpumip.obs.trace.dropped"), "");
  EXPECT_EQ(reporttool::category_of("gpumip.obs.sampler.dropped"), "");
  EXPECT_EQ(reporttool::category_of("gpumip.simmpi.recv.idle_seconds{rank=3}"), "");
  EXPECT_EQ(reporttool::category_of("gpumip.supervisor.checkpoints"), "");
}

TEST(ReportAttribution, DoubledTransferOutranksNoiseAndExclusionsAreSilent) {
  const BenchDoc base = one_bench({{"gpumip.gpu.xfer.h2d.bytes", 1000.0},
                                   {"gpumip.lp.ops.refactor", 100.0},
                                   {"gpumip.obs.trace.dropped", 1.0}});
  const BenchDoc cur = one_bench({{"gpumip.gpu.xfer.h2d.bytes", 2000.0},
                                  {"gpumip.lp.ops.refactor", 101.0},
                                  {"gpumip.obs.trace.dropped", 50000.0}});
  const Attribution a = reporttool::attribute(base, cur);
  ASSERT_EQ(a.ranked.size(), 2u);
  EXPECT_EQ(a.ranked[0].category, "transfer");
  EXPECT_NEAR(a.ranked[0].score, 1.0, 1e-12);
  EXPECT_EQ(a.ranked[1].category, "c3_basis");
  ASSERT_FALSE(a.ranked[0].top.empty());
  EXPECT_EQ(a.ranked[0].top[0].name, "gpumip.gpu.xfer.h2d.bytes");
}

TEST(ReportAttribution, MissingMetricScoresAgainstZeroAndIdenticalRunsAreClean) {
  const BenchDoc base = one_bench({{"gpumip.mip.cuts.generated", 10.0}});
  const BenchDoc cur = one_bench({{"gpumip.lp.batch.solves{method=pdhg}", 5.0}});
  const Attribution a = reporttool::attribute(base, cur);
  ASSERT_EQ(a.ranked.size(), 2u);  // vanished cuts + appeared batch metric
  EXPECT_TRUE(reporttool::attribute(base, base).ranked.empty());
}

TEST(ReportAttribution, RankSplitsAggregateBeforeScoring) {
  // Which rank serves which node is race-dependent, so the per-rank
  // shards shuffle between two correct runs; only the summed family
  // total is replay-stable. An opposing shuffle must score zero while a
  // real (if small) transfer move still registers.
  const BenchDoc base = one_bench({{"gpumip.simmpi.sent.bytes{rank=0}", 49.0},
                                   {"gpumip.simmpi.sent.bytes{rank=1}", 322.0},
                                   {"gpumip.gpu.xfer.h2d.bytes", 1000.0}});
  const BenchDoc cur = one_bench({{"gpumip.simmpi.sent.bytes{rank=0}", 322.0},
                                  {"gpumip.simmpi.sent.bytes{rank=1}", 49.0},
                                  {"gpumip.gpu.xfer.h2d.bytes", 1010.0}});
  const Attribution a = reporttool::attribute(base, cur);
  ASSERT_EQ(a.ranked.size(), 1u);
  EXPECT_EQ(a.ranked.front().category, "transfer");

  // A genuine total movement still lands in c8_scale, under the
  // label-stripped family name.
  const BenchDoc grown = one_bench({{"gpumip.simmpi.sent.bytes{rank=0}", 400.0},
                                    {"gpumip.simmpi.sent.bytes{rank=1}", 713.0},
                                    {"gpumip.gpu.xfer.h2d.bytes", 1000.0}});
  const Attribution b = reporttool::attribute(base, grown);
  ASSERT_EQ(b.ranked.size(), 1u);
  EXPECT_EQ(b.ranked.front().category, "c8_scale");
  ASSERT_FALSE(b.ranked.front().top.empty());
  EXPECT_EQ(b.ranked.front().top.front().name, "gpumip.simmpi.sent.bytes");
}

TEST(ReportProfile, CategoryMassAndFormatting) {
  const BenchDoc run = one_bench({{"gpumip.gpu.xfer.h2d.bytes", 600.0},
                                  {"gpumip.gpu.xfer.d2h.bytes", 400.0}},
                                 {{"gpumip.mip.reuse.hit_rate", 0.5}});
  const Profile profile = reporttool::build_profile(run, nullptr, nullptr);
  double transfer = -1.0;
  double memory = -1.0;
  for (const auto& ct : profile.categories) {
    if (ct.category == "transfer") transfer = ct.total;
    if (ct.category == "c5_memory") memory = ct.total;
  }
  EXPECT_DOUBLE_EQ(transfer, 1000.0);
  EXPECT_DOUBLE_EQ(memory, 0.5);
  const std::string text = reporttool::format_profile(profile);
  EXPECT_NE(text.find("transfer"), std::string::npos);
}

TEST(ReportTimeSeries, SamplerExportRoundTrips) {
  obs::counter("gpumip.test_report.rt.c").reset();
  obs::SamplerOptions options;
  options.period = 1.0;
  options.columns = {"gpumip.test_report.rt.c"};
  obs::Sampler sampler(options);
  obs::counter("gpumip.test_report.rt.c").add(4);
  sampler.sample_now(1.0, true);
  sampler.sample_now(2.0, true);

  TimeSeries series;
  std::string error;
  ASSERT_TRUE(reporttool::parse_timeseries(sampler.to_json(), series, error)) << error;
  ASSERT_EQ(series.columns.size(), 1u);
  EXPECT_EQ(series.columns[0], "gpumip.test_report.rt.c:counter");
  ASSERT_EQ(series.rows.size(), 2u);
  if (obs::kObsEnabled) {
    EXPECT_DOUBLE_EQ(series.rows[0][0], 4.0);
    EXPECT_DOUBLE_EQ(series.rows[1][0], 0.0);
  }

  const BenchDoc empty_run;
  const Profile profile = reporttool::build_profile(empty_run, nullptr, &series);
  EXPECT_TRUE(profile.has_timeseries);
  EXPECT_DOUBLE_EQ(profile.timeseries_span, 1.0);
}

TEST(ReportLive, RegistryExportParsesAndAttributes) {
  // A real registry export (v2, labeled names included) must flow through
  // parse_run -> attribute without hand-editing.
  obs::counter("gpumip.test_report.live.xfer").reset();
  const std::string before = obs::Registry::instance().to_json();
  obs::counter("gpumip.test_report.live.xfer").add(100);
  const std::string after = obs::Registry::instance().to_json();

  BenchDoc base;
  BenchDoc cur;
  std::string error;
  ASSERT_TRUE(reporttool::parse_run(before, base, error)) << error;
  ASSERT_TRUE(reporttool::parse_run(after, cur, error)) << error;
  const Attribution a = reporttool::attribute(base, cur);
  if (obs::kObsEnabled) {
    bool found = false;
    for (const auto& cd : a.ranked) {
      for (const auto& md : cd.top) {
        if (md.name == "gpumip.test_report.live.xfer") found = true;
      }
    }
    EXPECT_TRUE(found) << reporttool::format_attribution(a);
  }
}

TEST(ReportSelfCheck, KnownAnswerFixturesPass) {
  std::ostringstream out;
  EXPECT_TRUE(reporttool::run_self_check(out)) << out.str();
  EXPECT_NE(out.str().find("doubled H2D volume ranks transfer first"), std::string::npos);
}

}  // namespace
}  // namespace gpumip
