// Schedule fuzzing, deadlock diagnosis, and deterministic replay for the
// simmpi parallel core (DESIGN.md, "simmpi concurrency model").
//
// The headline property: the supervisor-worker protocol reaches a
// bit-identical incumbent/bound/point under EVERY legal message-delivery
// order, proven by sweeping >= 32 fuzzer seeds per parallel-strategy
// profile. The rest pins down the machinery itself: the fuzzer stays
// inside the per-source FIFO eligibility rule, the deadlock detector turns
// wedged protocols into abort-with-dump instead of a ctest hang, and a
// recorded trace replays a schedule exactly.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "check/registry.hpp"
#include "check/schedule_check.hpp"
#include "parallel/simmpi.hpp"
#include "parallel/strategies.hpp"
#include "parallel/supervisor.hpp"
#include "problems/generators.hpp"

namespace gpumip::parallel {
namespace {

using problems::RandomMipConfig;

mip::MipModel test_mip(std::uint64_t seed, int rows = 9, int cols = 15) {
  Rng rng(seed);
  RandomMipConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  cfg.bound = 4.0;
  return problems::random_mip(cfg, rng);
}

check::ScheduleOutcome outcome_of(const SupervisorResult& r) {
  check::ScheduleOutcome out;
  out.has_solution = r.result.has_solution;
  out.objective = r.result.objective;
  out.bound = r.result.bound;
  out.x = r.result.x;
  return out;
}

// ---------------- determinism sweeps ----------------

/// Supervisor profile approximating each of the paper's strategies: what
/// changes between S1-S4 from the protocol's point of view is how fast
/// workers turn assignments around (rate_scale), how chatty the exchange is
/// (node budget), and the wire (network) — exactly the knobs that shift
/// which messages race.
struct StrategyProfile {
  Strategy strategy;
  int workers;
  long budget;
  long ramp_up;
  double rate_scale;
  NetworkConfig network;
};

std::array<StrategyProfile, 4> strategy_profiles() {
  NetworkConfig fast;  // default wire
  NetworkConfig slow;
  slow.latency = 5.0e-5;  // slow wire: deliveries pile up and race harder
  slow.bandwidth = 1.0e9;
  return {{
      {Strategy::S1_GpuOnly, 2, 40, 8, 0.25, fast},
      {Strategy::S2_CpuOrchestrated, 3, 10, 10, 1.0, fast},
      {Strategy::S3_Hybrid, 4, 8, 12, 0.5, slow},
      {Strategy::S4_BigMip, 4, 6, 16, 0.75, slow},
  }};
}

TEST(ScheduleSweep, SupervisorDeterministicAcrossSeedsPerStrategy) {
  const mip::MipModel m = test_mip(17);
  mip::MipOptions seq_opts;
  seq_opts.enable_cuts = false;
  const mip::MipResult sequential = mip::BnbSolver(m, seq_opts).solve();
  ASSERT_EQ(sequential.status, mip::MipStatus::Optimal);

  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 1; s <= 32; ++s) seeds.push_back(s * 7919);

  for (const StrategyProfile& profile : strategy_profiles()) {
    SupervisorOptions opts;
    opts.workers = profile.workers;
    opts.worker_node_budget = profile.budget;
    opts.ramp_up_nodes = profile.ramp_up;
    opts.rate_scale = profile.rate_scale;
    opts.network = profile.network;
    opts.mip.enable_cuts = false;

    double swept_objective = 0.0;
    auto run_under = [&](std::uint64_t seed) {
      SupervisorOptions fuzzed = opts;
      fuzzed.schedule.fuzz = true;
      fuzzed.schedule.seed = seed;
      SupervisorResult r = solve_supervised(m, fuzzed);
      EXPECT_EQ(r.result.status, mip::MipStatus::Optimal)
          << strategy_name(profile.strategy) << " seed " << seed;
      swept_objective = r.result.objective;
      return outcome_of(r);
    };
    // Throws naming the two diverging seeds if ANY schedule changes the
    // incumbent, bound, or solution point (bit-identical comparison).
    EXPECT_NO_THROW(check::check_schedule_determinism(run_under, seeds))
        << strategy_name(profile.strategy);
    EXPECT_NEAR(swept_objective, sequential.objective, 1e-6)
        << strategy_name(profile.strategy);
  }
}

TEST(ScheduleSweep, DeterminismCheckerFlagsSeedDependentOutcome) {
  check::reset_counters();
  const std::vector<std::uint64_t> seeds{1, 2, 3};
  auto seed_leaks_into_result = [](std::uint64_t seed) {
    check::ScheduleOutcome out;
    out.has_solution = true;
    out.objective = static_cast<double>(seed % 2);  // schedule-dependent!
    return out;
  };
  EXPECT_THROW(check::check_schedule_determinism(seed_leaks_into_result, seeds), Error);
  EXPECT_EQ(check::checks_failed(check::Subsystem::kSchedule), 1u);
  EXPECT_GE(check::checks_run(check::Subsystem::kSchedule), 1u);
}

// ---------------- fuzzer legality ----------------

// Two senders flood rank 2, a barrier guarantees the queue is full before
// the receiver drains it wildcard-style — maximum reordering opportunity.
// Whatever order the fuzzer picks, per-source FIFO must survive.
TEST(ScheduleFuzz, ReorderingPreservesPerSourceFifo) {
  constexpr int kPerSender = 25;
  for (std::uint64_t seed : {3u, 1234u, 99991u}) {
    DeliveryTrace trace;
    RunOptions options;
    options.schedule.fuzz = true;
    options.schedule.seed = seed;
    options.schedule.record = &trace;
    std::vector<std::pair<int, int>> received;  // (source, payload) in order
    run_ranks(
        3,
        [&](Comm& comm) {
          if (comm.rank() < 2) {
            for (int i = 0; i < kPerSender; ++i) {
              ByteWriter w;
              w.write<int>(i);
              comm.send(2, 1, std::move(w).take());
            }
            comm.barrier();
          } else {
            comm.barrier();  // all sends queued before the first recv
            for (int i = 0; i < 2 * kPerSender; ++i) {
              Message msg = comm.recv();
              ByteReader r(msg.payload);
              received.emplace_back(msg.source, r.read<int>());
            }
          }
        },
        options);
    ASSERT_EQ(received.size(), static_cast<std::size_t>(2 * kPerSender)) << "seed " << seed;
    std::map<int, int> last;  // source -> last payload seen
    for (const auto& [source, value] : received) {
      auto [it, first] = last.try_emplace(source, value);
      if (!first) {
        EXPECT_GT(value, it->second) << "per-source FIFO violated, seed " << seed;
        it->second = value;
      }
    }
    // The recorded trace passes the structural validator (Lamport
    // monotonicity + strictly increasing per-source seq).
    EXPECT_GE(trace.size(), static_cast<std::size_t>(2 * kPerSender));
    EXPECT_NO_THROW(check::check_delivery_trace(trace, 3)) << "seed " << seed;
  }
}

TEST(ScheduleFuzz, DistinctSeedsExploreDistinctOrders) {
  constexpr int kPerSender = 12;
  std::set<std::string> patterns;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    RunOptions options;
    options.schedule.fuzz = true;
    options.schedule.seed = seed;
    std::string pattern;  // receiver's source sequence, e.g. "010011..."
    run_ranks(
        3,
        [&](Comm& comm) {
          if (comm.rank() < 2) {
            for (int i = 0; i < kPerSender; ++i) comm.send(2, 1, std::span<const std::byte>{});
            comm.barrier();
          } else {
            comm.barrier();
            for (int i = 0; i < 2 * kPerSender; ++i) {
              pattern.push_back(static_cast<char>('0' + comm.recv().source));
            }
          }
        },
        options);
    patterns.insert(pattern);
  }
  // The whole point of the sweep: different seeds produce different legal
  // delivery orders (a single interleaving would test nothing).
  EXPECT_GE(patterns.size(), 2u);
}

// ---------------- deadlock diagnosis ----------------

TEST(ScheduleDeadlock, CrossRecvCycleAbortsWithDump) {
  RunReport report;
  RunOptions options;
  options.report_out = &report;
  try {
    run_ranks(
        2,
        [](Comm& comm) {
          comm.recv(1 - comm.rank(), 5);  // each waits for the other: classic cycle
        },
        options);
    FAIL() << "wedged protocol did not abort";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("deadlock"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
    EXPECT_NE(what.find("[STUCK]"), std::string::npos) << what;
  }
  EXPECT_TRUE(report.deadlock_detected);
  EXPECT_EQ(report.failed_ranks, 0);  // nobody failed; the protocol wedged
}

TEST(ScheduleDeadlock, WaitOnExitedRankIsDetected) {
  EXPECT_THROW(run_ranks(2,
                         [](Comm& comm) {
                           if (comm.rank() == 0) comm.recv(1, 0);  // rank 1 just leaves
                         }),
               Error);
}

TEST(ScheduleDeadlock, BarrierMissingRankIsDetected) {
  RunReport report;
  RunOptions options;
  options.report_out = &report;
  try {
    run_ranks(
        3,
        [](Comm& comm) {
          if (comm.rank() != 2) comm.barrier();  // rank 2 never arrives
        },
        options);
    FAIL() << "half-attended barrier did not abort";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("blocked in barrier()"), std::string::npos) << what;
  }
  EXPECT_TRUE(report.deadlock_detected);
}

// A wedged request/reply: the worker's SECOND request is queued at the
// supervisor, but the supervisor filters on the wrong tag. The dump must
// show the mailbox contents — that is the diagnosis (message present,
// filter wrong). One request IS delivered first, so a failure trace
// exists (GPUMIP_SCHEDULE_TRACE captures it; see scripts/check.sh).
TEST(ScheduleDeadlock, DumpShowsQueuedMessagesAndBlockedSites) {
  try {
    run_ranks(2, [](Comm& comm) {
      if (comm.rank() == 0) {
        comm.recv(1, 1);  // first request handled fine...
        comm.recv(1, 3);  // ...wrong tag: the queued tag-1 request never matches
      } else {
        comm.send(0, 1, std::span<const std::byte>{});
        comm.send(0, 1, std::span<const std::byte>{});
        comm.recv(0, 2);  // waits forever for the reply
      }
    });
    FAIL() << "wedged request/reply did not abort";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("blocked in recv(source=1, tag=3)"), std::string::npos) << what;
    EXPECT_NE(what.find("blocked in recv(source=0, tag=2)"), std::string::npos) << what;
    EXPECT_NE(what.find("from 1 tag 1 seq 2"), std::string::npos) << what;
  }
}

TEST(ScheduleDeadlock, FuzzedSweepNeverFalselyFiresOnHealthyProtocol) {
  // Request/replies that DO complete, under heavy fuzzing: the conservative
  // detector must stay silent for every seed.
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    RunReport report;
    RunOptions options;
    options.schedule.fuzz = true;
    options.schedule.seed = seed;
    options.report_out = &report;
    run_ranks(
        3,
        [](Comm& comm) {
          if (comm.rank() == 0) {
            for (int round = 0; round < 8; ++round) {
              Message req = comm.recv(-1, 1);
              comm.send(req.source, 2, std::span<const std::byte>{});
            }
          } else {
            for (int round = 0; round < 4; ++round) {
              comm.send(0, 1, std::span<const std::byte>{});
              comm.recv(0, 2);
            }
          }
          comm.barrier();
        },
        options);
    EXPECT_FALSE(report.deadlock_detected) << "seed " << seed;
  }
}

// ---------------- abnormal-exit accounting (satellite: truthful stats) -----

TEST(AbnormalExit, ReportCountsOnlyTheFailedRankAndUndelivered) {
  RunReport report;
  RunOptions options;
  options.report_out = &report;
  EXPECT_THROW(run_ranks(
                   2,
                   [](Comm& comm) {
                     if (comm.rank() == 0) {
                       for (int i = 0; i < 3; ++i) comm.send(1, 1, std::span<const std::byte>{});
                       throw Error(ErrorCode::kInternal, "deliberate failure");
                     }
                     comm.recv(0, 99);  // never matches; unwound by the abort
                   },
                   options),
               Error);
  EXPECT_EQ(report.failed_ranks, 1);  // rank 1 was unwound, not failed
  EXPECT_FALSE(report.deadlock_detected);
  EXPECT_EQ(report.network.messages, 3u);
  EXPECT_EQ(report.network.undelivered, 3u);
  ASSERT_EQ(report.rank_clocks.size(), 2u);
}

// ---------------- trace record / replay ----------------

TEST(ScheduleTrace, SerializationRoundTripsExactly) {
  DeliveryTrace trace;
  trace.deliveries = {
      {0, 1, 7, 1, 0.0},
      {1, 0, 2, 1, 1.0e-6},
      {0, 1, 7, 2, 0x1.fffffffffffffp-1},  // full-precision clock survives
  };
  const DeliveryTrace back = deserialize_trace(serialize_trace(trace));
  ASSERT_EQ(back.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(back.deliveries[i].rank, trace.deliveries[i].rank);
    EXPECT_EQ(back.deliveries[i].source, trace.deliveries[i].source);
    EXPECT_EQ(back.deliveries[i].tag, trace.deliveries[i].tag);
    EXPECT_EQ(back.deliveries[i].seq, trace.deliveries[i].seq);
    EXPECT_EQ(back.deliveries[i].clock, trace.deliveries[i].clock);  // bitwise
  }
  const std::string path = testing::TempDir() + "gpumip_trace_roundtrip.txt";
  save_trace(trace, path);
  EXPECT_EQ(load_trace(path).size(), trace.size());
  EXPECT_THROW(deserialize_trace("not a trace"), Error);
  EXPECT_THROW(deserialize_trace("gpumip-delivery-trace v1 2\n0 1 7 1 0x0p+0\n"), Error);
  EXPECT_THROW(load_trace(path + ".does-not-exist"), Error);
}

std::vector<std::vector<std::uint64_t>> per_rank_source_seq(const DeliveryTrace& trace, int n) {
  std::vector<std::vector<std::uint64_t>> seqs(static_cast<std::size_t>(n));
  for (const DeliveryRecord& record : trace.deliveries) {
    seqs[static_cast<std::size_t>(record.rank)].push_back(
        (static_cast<std::uint64_t>(record.source) << 32) | record.seq);
  }
  return seqs;
}

TEST(ScheduleReplay, ReproducesARecordedSupervisorSchedule) {
  const mip::MipModel m = test_mip(23);
  SupervisorOptions opts;
  opts.workers = 3;
  opts.worker_node_budget = 10;
  opts.ramp_up_nodes = 10;
  opts.mip.enable_cuts = false;

  DeliveryTrace recorded;
  opts.schedule.fuzz = true;
  opts.schedule.seed = 42;
  opts.schedule.record = &recorded;
  SupervisorResult first = solve_supervised(m, opts);
  ASSERT_EQ(first.result.status, mip::MipStatus::Optimal);
  ASSERT_FALSE(recorded.empty());

  DeliveryTrace replayed;
  opts.schedule.fuzz = false;
  opts.schedule.seed = 0;
  opts.schedule.replay = &recorded;
  opts.schedule.record = &replayed;
  SupervisorResult second = solve_supervised(m, opts);
  ASSERT_EQ(second.result.status, mip::MipStatus::Optimal);

  // Exact reproduction: every rank consumed the same messages in the same
  // order (the global interleaving of the log may differ; each rank's
  // subsequence is what determines the execution).
  const int n = opts.workers + 1;
  EXPECT_EQ(per_rank_source_seq(replayed, n), per_rank_source_seq(recorded, n));
  EXPECT_EQ(outcome_of(second), outcome_of(first));
}

TEST(ScheduleReplay, DivergentProtocolIsRejectedNotMisreplayed) {
  // Record a run where rank 1 consumes (tag 1, then tag 2)...
  DeliveryTrace recorded;
  RunOptions record_options;
  record_options.schedule.record = &recorded;
  run_ranks(
      2,
      [](Comm& comm) {
        if (comm.rank() == 0) {
          comm.send(1, 1, std::span<const std::byte>{});
          comm.send(1, 2, std::span<const std::byte>{});
        } else {
          comm.recv(0, 1);
          comm.recv(0, 2);
        }
      },
      record_options);
  ASSERT_EQ(recorded.size(), 2u);

  // ...then replay it against a body that asks for tag 2 FIRST. The replay
  // cursor points at the tag-1 message; honoring the filter would diverge
  // from the recorded schedule, so the run must abort, not improvise.
  RunOptions replay_options;
  replay_options.schedule.replay = &recorded;
  try {
    run_ranks(
        2,
        [](Comm& comm) {
          if (comm.rank() == 0) {
            comm.send(1, 1, std::span<const std::byte>{});
            comm.send(1, 2, std::span<const std::byte>{});
          } else {
            comm.recv(0, 2);
            comm.recv(0, 1);
          }
        },
        replay_options);
    FAIL() << "divergent replay was not rejected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("replay diverged"), std::string::npos) << e.what();
  }
}

// ---------------- delivery-trace validator negatives ----------------

TEST(ScheduleTraceValidator, FlagsClockRegressionFifoViolationAndMalformedRecords) {
  check::reset_counters();
  DeliveryTrace ok;
  ok.deliveries = {{1, 0, 1, 1, 1.0}, {1, 0, 1, 2, 2.0}};
  EXPECT_NO_THROW(check::check_delivery_trace(ok, 2));

  DeliveryTrace clock_regress = ok;
  clock_regress.deliveries[1].clock = 0.5;  // receiver's clock went backwards
  EXPECT_THROW(check::check_delivery_trace(clock_regress, 2), Error);

  DeliveryTrace fifo_violation = ok;
  fifo_violation.deliveries[0].seq = 2;  // seq 2 delivered before seq 1
  fifo_violation.deliveries[1].seq = 1;
  fifo_violation.deliveries[1].clock = 2.0;
  EXPECT_THROW(check::check_delivery_trace(fifo_violation, 2), Error);

  DeliveryTrace zero_seq = ok;
  zero_seq.deliveries[0].seq = 0;
  EXPECT_THROW(check::check_delivery_trace(zero_seq, 2), Error);

  DeliveryTrace out_of_range = ok;
  out_of_range.deliveries[0].rank = 5;
  EXPECT_THROW(check::check_delivery_trace(out_of_range, 2), Error);

  EXPECT_EQ(check::checks_failed(check::Subsystem::kSchedule), 4u);
}

}  // namespace
}  // namespace gpumip::parallel
