// Primal-dual interior-point LP solver (Mehrotra predictor-corrector).
//
// The paper (section 2.3) notes interior-point methods are the preferred
// family for sparse real-world LPs; the normal-equations system A D Aᵀ is
// factorized by Cholesky each iteration — dense Cholesky on the GPU path,
// sparse Cholesky (with fill-reducing ordering) on the hybrid/CPU path.
// Experiment E9 compares this engine against the simplex.
#pragma once

#include "lp/result.hpp"
#include "lp/standard_form.hpp"

namespace gpumip::lp {

struct InteriorPointOptions {
  double tol = 1e-8;          ///< relative residual + duality-gap target
  int max_iterations = 100;
  double step_scale = 0.9995; ///< fraction-to-boundary
  /// Density of A D Aᵀ above which the dense Cholesky path is used.
  double dense_threshold = 0.2;
  bool force_dense = false;
  bool force_sparse = false;
};

class InteriorPointSolver {
 public:
  explicit InteriorPointSolver(const StandardForm& form, InteriorPointOptions options = {});

  /// Solves under the given bounds (defaults to the form's own). Free
  /// variables are split, finite upper bounds become extra rows, so the
  /// core iteration works on min cᵀx, Ax = b, x ≥ 0.
  [[nodiscard]] LpResult solve(std::span<const double> lb, std::span<const double> ub);
  [[nodiscard]] LpResult solve_default() { return solve(form_->lb, form_->ub); }

 private:
  const StandardForm* form_;
  InteriorPointOptions options_;
};

}  // namespace gpumip::lp
