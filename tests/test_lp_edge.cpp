// LP engine edge cases: option ablations (refactor cadence, Bland
// threshold), limits, and warm-start corner cases.
#include <gtest/gtest.h>

#include "lp/simplex.hpp"
#include "problems/generators.hpp"

namespace gpumip::lp {
namespace {

LpModel medium_lp(std::uint64_t seed) {
  Rng rng(seed);
  return problems::dense_lp(15, 25, rng);
}

TEST(SimplexOptionsAblation, RefactorEveryIterationSameAnswer) {
  const StandardForm form = build_standard_form(medium_lp(1));
  SimplexOptions lazy;  // default interval 64
  SimplexOptions eager;
  eager.refactor_interval = 1;  // the "no PFI reuse" ablation
  LpResult a = SimplexSolver(form, lazy).solve_default();
  LpResult b = SimplexSolver(form, eager).solve_default();
  ASSERT_EQ(a.status, LpStatus::Optimal);
  ASSERT_EQ(b.status, LpStatus::Optimal);
  EXPECT_NEAR(a.objective, b.objective, 1e-8);
  EXPECT_GT(b.ops.refactor, a.ops.refactor * 4);
  EXPECT_LT(a.ops.refactor, a.ops.iterations);
}

TEST(SimplexOptionsAblation, AggressiveBlandStillOptimal) {
  const StandardForm form = build_standard_form(medium_lp(2));
  SimplexOptions opts;
  opts.bland_threshold = 0;  // Bland's rule from the first degenerate pivot
  LpResult r = SimplexSolver(form, opts).solve_default();
  ASSERT_EQ(r.status, LpStatus::Optimal);
  LpResult reference = SimplexSolver(form).solve_default();
  EXPECT_NEAR(r.objective, reference.objective, 1e-8);
}

TEST(SimplexLimits, IterationLimitReported) {
  const StandardForm form = build_standard_form(medium_lp(3));
  SimplexOptions opts;
  opts.max_iterations = 2;
  LpResult r = SimplexSolver(form, opts).solve_default();
  EXPECT_EQ(r.status, LpStatus::IterationLimit);
}

TEST(SimplexWarmStart, GarbageBasisFallsBackToColdStart) {
  const StandardForm form = build_standard_form(medium_lp(4));
  Basis garbage;
  garbage.basic.assign(static_cast<std::size_t>(form.num_rows), 0);  // duplicate columns
  garbage.status.assign(static_cast<std::size_t>(form.num_vars), VarStatus::AtLower);
  SimplexSolver solver(form);
  LpResult r = solver.solve(form.lb, form.ub, &garbage);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, solver.solve_default().objective, 1e-8);
}

TEST(SimplexWarmStart, OversizedBasisRejectedGracefully) {
  const StandardForm form = build_standard_form(medium_lp(5));
  Basis wrong;
  wrong.basic.assign(3, 0);  // wrong m
  wrong.status.assign(2, VarStatus::AtLower);
  SimplexSolver solver(form);
  LpResult r = solver.solve(form.lb, form.ub, &wrong);
  EXPECT_EQ(r.status, LpStatus::Optimal);
}

TEST(DualSimplex, RaisedLowerBoundResolve) {
  // Branching "up": raise a lower bound above the LP value and dual-resolve.
  LpModel m;
  m.set_sense(Sense::Maximize);
  const int x = m.add_col(3.0, 0, 10), y = m.add_col(5.0, 0, 10);
  m.add_row_le({{x, 1.0}}, 4.0);
  m.add_row_le({{y, 2.0}}, 12.0);
  m.add_row_le({{x, 3.0}, {y, 2.0}}, 18.0);
  const StandardForm form = build_standard_form(m);
  SimplexSolver solver(form);
  LpResult root = solver.solve_default();
  ASSERT_EQ(root.status, LpStatus::Optimal);  // (2, 6)
  linalg::Vector lb = form.lb, ub = form.ub;
  lb[0] = 3.0;  // x >= 3
  LpResult dual = solver.resolve_dual(lb, ub, root.basis);
  LpResult cold = solver.solve(lb, ub, nullptr);
  ASSERT_EQ(dual.status, LpStatus::Optimal);
  EXPECT_NEAR(dual.objective, cold.objective, 1e-8);
  // x = 3 -> 3x + 2y <= 18 gives y <= 4.5: obj 9 + 22.5 = 31.5.
  EXPECT_NEAR(form.user_objective(dual.objective), 31.5, 1e-7);
}

TEST(DualSimplex, BothBoundsTightenedSimultaneously) {
  const StandardForm form = build_standard_form(medium_lp(6));
  SimplexSolver solver(form);
  LpResult root = solver.solve_default();
  ASSERT_EQ(root.status, LpStatus::Optimal);
  linalg::Vector lb = form.lb, ub = form.ub;
  // Fix two variables to interior integers.
  for (int j = 0; j < 2; ++j) {
    const double v = std::floor(root.x[static_cast<std::size_t>(j)]);
    lb[static_cast<std::size_t>(j)] = ub[static_cast<std::size_t>(j)] = v;
  }
  LpResult dual = solver.resolve_dual(lb, ub, root.basis);
  LpResult cold = solver.solve(lb, ub, nullptr);
  ASSERT_EQ(dual.status, cold.status);
  if (cold.status == LpStatus::Optimal) {
    EXPECT_NEAR(dual.objective, cold.objective, 1e-7);
  }
}

TEST(SimplexDegenerate, ManyRedundantRowsStillSolve) {
  // The same constraint repeated: massively degenerate but solvable.
  LpModel m;
  const int x = m.add_col(-1.0, 0, 100);
  for (int i = 0; i < 12; ++i) m.add_row_le({{x, 1.0}}, 7.0);
  LpResult r = SimplexSolver(build_standard_form(m)).solve_default();
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.x[0], 7.0, 1e-8);
}

TEST(StandardFormEdge, EmptyObjectiveAndFreeRow) {
  LpModel m;
  const int x = m.add_col(0.0, 1.0, 2.0);
  m.add_row(-kInf, kInf, "free-row");  // never binds
  m.set_coef(0, x, 1.0);
  const StandardForm form = build_standard_form(m);
  LpResult r = SimplexSolver(form).solve_default();
  EXPECT_EQ(r.status, LpStatus::Optimal);
  EXPECT_EQ(r.objective, 0.0);
}

}  // namespace
}  // namespace gpumip::lp
