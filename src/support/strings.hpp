// Small string/formatting helpers shared across modules.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gpumip {

/// "12.0 KiB", "3.4 GiB", ... for reporting memory footprints.
std::string human_bytes(std::uint64_t bytes);

/// "1.23 ms", "4.5 s", ... for reporting simulated times (input seconds).
std::string human_seconds(double seconds);

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items, const std::string& sep);

/// Splits on any whitespace, skipping empty tokens.
std::vector<std::string> split_ws(const std::string& line);

/// Trims ASCII whitespace from both ends.
std::string trim(const std::string& s);

/// True if `s` starts with `prefix`.
bool starts_with(const std::string& s, const std::string& prefix);

/// Uppercases ASCII in place and returns a copy.
std::string to_upper(std::string s);

}  // namespace gpumip
