#include <gtest/gtest.h>

#include <memory>

#include "lp/batched_lp.hpp"
#include "problems/generators.hpp"

namespace gpumip::lp {
namespace {

struct Batch {
  std::vector<std::unique_ptr<StandardForm>> storage;
  std::vector<const StandardForm*> views;
};

Batch make_batch(int count, std::uint64_t seed) {
  Rng rng(seed);
  Batch batch;
  for (int i = 0; i < count; ++i) {
    LpModel model = problems::dense_lp(8 + i % 4, 12 + i % 5, rng);
    batch.storage.push_back(std::make_unique<StandardForm>(build_standard_form(model)));
    batch.views.push_back(batch.storage.back().get());
  }
  return batch;
}

TEST(BatchedLp, AllModesProduceIdenticalResults) {
  Batch batch = make_batch(12, 11);
  std::vector<double> reference;
  for (BatchMode mode : {BatchMode::Sequential, BatchMode::Streams, BatchMode::Lockstep}) {
    gpu::Device device;
    BatchedLpReport report = solve_batched(batch.views, device, mode);
    ASSERT_EQ(report.results.size(), batch.views.size()) << batch_mode_name(mode);
    if (reference.empty()) {
      for (const LpResult& r : report.results) {
        EXPECT_EQ(r.status, LpStatus::Optimal);
        reference.push_back(r.objective);
      }
    } else {
      for (std::size_t i = 0; i < report.results.size(); ++i) {
        EXPECT_NEAR(report.results[i].objective, reference[i], 1e-9)
            << batch_mode_name(mode) << " problem " << i;
      }
    }
    EXPECT_GT(report.sim_seconds, 0.0);
  }
}

TEST(BatchedLp, StreamsOverlapBeatsSequential) {
  Batch batch = make_batch(32, 13);
  gpu::Device d1, d2;
  BatchedLpReport seq = solve_batched(batch.views, d1, BatchMode::Sequential);
  BatchedLpReport str = solve_batched(batch.views, d2, BatchMode::Streams);
  EXPECT_LT(str.sim_seconds, seq.sim_seconds);
  EXPECT_EQ(seq.kernels, str.kernels);  // same work, different schedule
}

TEST(BatchedLp, LockstepUsesFarFewerKernels) {
  Batch batch = make_batch(32, 17);
  gpu::Device d1, d2;
  BatchedLpReport seq = solve_batched(batch.views, d1, BatchMode::Sequential);
  BatchedLpReport lock = solve_batched(batch.views, d2, BatchMode::Lockstep);
  EXPECT_LT(lock.kernels, seq.kernels / 4);
  EXPECT_GT(lock.waves, 0);
  EXPECT_LT(lock.sim_seconds, seq.sim_seconds);
}

TEST(BatchedLp, CapacityIsEnforced) {
  Batch batch = make_batch(8, 19);
  gpu::CostModelConfig tiny;
  tiny.memory_bytes = 4 * 1024;  // cannot hold 8 relaxations
  gpu::Device device(tiny);
  EXPECT_THROW(solve_batched(batch.views, device, BatchMode::Lockstep), DeviceOutOfMemory);
}

TEST(BatchedLp, InputValidation) {
  gpu::Device device;
  EXPECT_THROW(solve_batched({}, device, BatchMode::Sequential), Error);
  Batch batch = make_batch(1, 23);
  EXPECT_THROW(solve_batched(batch.views, device, BatchMode::Streams, {}, 0), Error);
  std::vector<const StandardForm*> with_null = {nullptr};
  EXPECT_THROW(solve_batched(with_null, device, BatchMode::Sequential), Error);
}

TEST(BatchedLp, PersistentArenaMakesRepeatBatchesAllocationFree) {
  Batch batch = make_batch(8, 31);
  gpu::Device device;
  gpu::DeviceArena arena(device, "batch.lp");
  BatchedLpReport first = solve_batched(batch.views, device, arena, BatchMode::Lockstep);
  // The up-front reserve sizes one exact slab for the whole batch
  // (solve_batched calls reset_stats, so assert through the live ledger).
  EXPECT_EQ(device.live_allocations(), 1u);
  EXPECT_EQ(arena.slab_count(), 1u);
  const std::size_t capacity_after_first = arena.capacity_bytes();
  for (int round = 0; round < 3; ++round) {
    BatchedLpReport again = solve_batched(batch.views, device, arena, BatchMode::Lockstep);
    ASSERT_EQ(again.results.size(), first.results.size());
    EXPECT_NEAR(again.results[0].objective, first.results[0].objective, 1e-12);
  }
  // Steady state (ROADMAP item 4): the first batch's slab serves every
  // later batch — no new device allocations, no capacity growth.
  EXPECT_EQ(device.live_allocations(), 1u);
  EXPECT_EQ(arena.slab_count(), 1u);
  EXPECT_EQ(arena.capacity_bytes(), capacity_after_first);
}

TEST(BatchedLp, ThrowawayArenaOverloadStillSolves) {
  Batch batch = make_batch(4, 37);
  gpu::Device device;
  BatchedLpReport r = solve_batched(batch.views, device, BatchMode::Sequential);
  ASSERT_EQ(r.results.size(), 4u);
  // The throwaway arena freed its slab on return: ledger clean, no leaks.
  EXPECT_EQ(device.live_allocations(), 0u);
  EXPECT_NO_THROW(device.audit());
}

TEST(BatchedLp, SingleProblemDegeneratesGracefully) {
  Batch batch = make_batch(1, 29);
  gpu::Device device;
  BatchedLpReport r = solve_batched(batch.views, device, BatchMode::Lockstep);
  EXPECT_EQ(r.results.size(), 1u);
  EXPECT_EQ(r.results[0].status, LpStatus::Optimal);
}

}  // namespace
}  // namespace gpumip::lp
