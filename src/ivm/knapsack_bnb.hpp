// Dedicated 0/1-knapsack branch-and-bound (the earliest GPU B&B target in
// the literature the paper surveys). DFS with the greedy fractional bound;
// a device-batched variant evaluates bounds for a frontier of nodes in one
// kernel — the "many small independent evaluations" pattern of section 5.5.
#pragma once

#include <vector>

#include "gpu/device.hpp"
#include "support/rng.hpp"

namespace gpumip::ivm {

struct KnapsackInstance {
  std::vector<double> value;
  std::vector<double> weight;
  double capacity = 0.0;

  int items() const noexcept { return static_cast<int>(value.size()); }
  static KnapsackInstance random(int items, Rng& rng, double capacity_ratio = 0.5);
};

struct KnapsackResult {
  double best_value = 0.0;
  std::vector<int> chosen;  ///< item indices in the optimal solution
  long nodes = 0;
  long kernel_waves = 0;    ///< device variant only
};

/// Host DFS branch-and-bound with the fractional (LP) bound.
KnapsackResult solve_knapsack_cpu(const KnapsackInstance& instance);

/// Breadth-synchronous variant on the simulated device: each wave expands
/// the frontier and evaluates all bounds in one batched kernel.
KnapsackResult solve_knapsack_gpu(const KnapsackInstance& instance, gpu::Device& device,
                                  int max_frontier = 1 << 16);

/// Exact dynamic program (integer weights required) for cross-checking.
double knapsack_dp(const KnapsackInstance& instance);

}  // namespace gpumip::ivm
