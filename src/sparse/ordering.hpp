// Fill-reducing orderings for sparse factorization (paper section 4.2: the
// "setup stages" of sparse solves that the hybrid strategy delegates to the
// CPU). Reverse Cuthill-McKee for bandwidth, greedy minimum degree for fill.
#pragma once

#include <vector>

#include "sparse/formats.hpp"

namespace gpumip::sparse {

/// Symmetrized adjacency (pattern of A + Aᵀ, diagonal removed).
std::vector<std::vector<int>> symmetric_adjacency(const Csr& a);

/// Reverse Cuthill-McKee ordering: returns perm with perm[k] = original
/// index placed at position k. Handles disconnected graphs.
std::vector<int> rcm_ordering(const Csr& a);

/// Greedy minimum-degree ordering on the symmetrized pattern (naive
/// clique-update variant, adequate for moderate n).
std::vector<int> min_degree_ordering(const Csr& a);

/// Symmetric permutation B = P A Pᵀ for a square matrix, with
/// perm[k] = original index at position k.
Csr permute_symmetric(const Csr& a, const std::vector<int>& perm);

/// Bandwidth of a square sparse matrix: max |i - j| over nonzeros.
int bandwidth(const Csr& a);

/// Exact fill-in count of an (unpivoted) symbolic Cholesky/LU on the
/// symmetrized pattern; used to test that orderings reduce fill.
long symbolic_fill(const Csr& a);

}  // namespace gpumip::sparse
