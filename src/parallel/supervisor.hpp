// UG-style supervisor-worker parallel MIP solve (paper section 2.3) on the
// simmpi runtime:
//
//  * ramp-up: the supervisor expands the tree breadth-style until there are
//    enough open subproblems to feed the workers,
//  * dynamic load balancing: workers solve subproblems under a node budget
//    and return their unsolved frontier to the supervisor's pool,
//  * incumbent sharing: new incumbents propagate as cutoffs with the next
//    assignment,
//  * checkpointing: the supervisor can emit consistent snapshots that
//    include BOTH the queued subproblems and the in-flight assignments —
//    the non-trivial part of parallel snapshot consistency the paper
//    highlights (section 2.1),
//  * restart: a run can resume from such a snapshot.
#pragma once

#include <functional>
#include <string>

#include "mip/solver.hpp"
#include "obs/sampler.hpp"
#include "parallel/simmpi.hpp"

namespace gpumip::parallel {

struct SupervisorOptions {
  int workers = 4;
  long ramp_up_nodes = 64;        ///< supervisor node budget for ramp-up
  int target_pool_per_worker = 4; ///< ramp-up stops at workers * this open nodes
  long worker_node_budget = 500;  ///< nodes per assignment
  mip::MipOptions mip;            ///< base engine options (cuts run once, at ramp-up)
  NetworkConfig network;
  /// Schedule controls for the underlying run_ranks world (delivery-order
  /// fuzzing, deadlock detection, trace record/replay). The supervisor
  /// protocol must produce the same incumbent under every legal schedule;
  /// tests/test_schedule.cpp sweeps seeds to prove it.
  ScheduleConfig schedule;
  /// Worker compute-rate scale: simulated seconds advanced per assignment
  /// are cpu_seconds(ops) * rate_scale (use < 1 to model GPU-accelerated
  /// workers).
  double rate_scale = 1.0;
  /// Checkpoint every N completed assignments (0 = never).
  int checkpoint_interval = 0;
  std::function<void(const mip::ConsistentSnapshot&)> on_checkpoint;
  /// Optional time-series sampler, bound on the supervisor rank's thread
  /// and ticked with its sim clock on every received message — sim-stamped
  /// rows are bit-identical under schedule replay (the supervisor rank
  /// owns the sampled progress counters deterministically).
  obs::Sampler* sampler = nullptr;
  /// Model per-node LP device residency on the workers: each worker rank
  /// gets a gpu::Device and (worker_arena) a DeviceArena threaded into its
  /// BnbSolver, so the e8 bench witnesses the per-node alloc-vs-arena
  /// difference (ROADMAP item 4). Off by default: purely observational.
  bool model_worker_device = false;
  /// Reuse one arena across all of a worker's node solves (the point of
  /// the exercise); false = naive per-node Device::alloc/free.
  bool worker_arena = true;
};

struct SupervisorResult {
  mip::MipResult result;
  double makespan = 0.0;           ///< simulated parallel time
  double ramp_up_seconds = 0.0;    ///< simulated supervisor ramp-up time
  NetworkStats network;
  long subproblems_dispatched = 0;
  long checkpoints_emitted = 0;
  std::vector<long> worker_nodes;  ///< nodes evaluated per worker (balance)
  std::vector<double> worker_busy; ///< simulated busy seconds per worker
};

/// Solves `model` with one supervisor rank and options.workers workers.
SupervisorResult solve_supervised(const mip::MipModel& model, const SupervisorOptions& options);

/// Resumes from a snapshot captured by a prior (possibly interrupted) run.
/// The snapshot must come from the same model (after identical root cuts,
/// i.e. from this function or a cuts-disabled run).
SupervisorResult resume_supervised(const mip::MipModel& model,
                                   const mip::ConsistentSnapshot& snapshot,
                                   const SupervisorOptions& options);

}  // namespace gpumip::parallel
