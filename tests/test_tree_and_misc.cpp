// Direct tests of the node pool's selection policies, logging, and
// device-BLAS corners not covered by the higher-level suites.
#include <gtest/gtest.h>

#include "linalg/blas.hpp"
#include "linalg/device_blas.hpp"
#include "linalg/qr.hpp"
#include "mip/branching.hpp"
#include "mip/tree.hpp"
#include "support/log.hpp"

namespace gpumip {
namespace {

using linalg::Matrix;
using linalg::Vector;

mip::BnbNode make_node(int parent, double bound, int depth = 0) {
  mip::BnbNode node;
  node.parent = parent;
  node.bound = bound;
  node.depth = depth;
  node.lb = {0.0};
  node.ub = {1.0};
  return node;
}

TEST(NodePool, BestFirstPopsLowestBound) {
  mip::NodePool pool(mip::NodeSelection::BestFirst);
  pool.push(make_node(-1, 5.0));
  pool.push(make_node(-1, 1.0));
  pool.push(make_node(-1, 3.0));
  EXPECT_EQ(pool.node(pool.pop(-1, 1e300)).bound, 1.0);
  EXPECT_EQ(pool.node(pool.pop(-1, 1e300)).bound, 3.0);
  EXPECT_EQ(pool.node(pool.pop(-1, 1e300)).bound, 5.0);
  EXPECT_EQ(pool.pop(-1, 1e300), -1);
}

TEST(NodePool, DepthFirstPopsLifo) {
  mip::NodePool pool(mip::NodeSelection::DepthFirst);
  const int a = pool.push(make_node(-1, 1.0));
  const int b = pool.push(make_node(-1, 9.0));
  EXPECT_EQ(pool.pop(-1, 1e300), b);  // most recently pushed, despite worse bound
  EXPECT_EQ(pool.pop(-1, 1e300), a);
}

TEST(NodePool, GpuLocalityPrefersChildrenOfLastNode) {
  mip::NodePool pool(mip::NodeSelection::GpuLocality, /*locality_slack=*/0.5);
  const int root = pool.push(make_node(-1, 0.0));
  EXPECT_EQ(pool.pop(-1, 1e300), root);
  pool.set_state(root, mip::NodeState::Branched);
  pool.push(make_node(-1, 0.05));           // unrelated, slightly better bound
  const int child = pool.push(make_node(root, 0.3));
  // The child of the just-evaluated node wins despite its worse bound
  // (within the slack).
  EXPECT_EQ(pool.pop(root, 1e300), child);
}

TEST(NodePool, GpuLocalityFallsBackToBestFirst) {
  mip::NodePool pool(mip::NodeSelection::GpuLocality, 0.01);
  pool.push(make_node(-1, 0.0));
  pool.push(make_node(-1, 100.0));
  const int best = pool.push(make_node(-1, -5.0));
  // No active node is a child of `last`: locality finds nothing to reuse and
  // must fall back to plain best-first selection.
  EXPECT_EQ(pool.pop(/*last=*/99, 1e300), best);
}

TEST(NodePool, PruneWorseThanRetagsAndCounts) {
  mip::NodePool pool(mip::NodeSelection::BestFirst);
  pool.push(make_node(-1, 1.0));
  pool.push(make_node(-1, 10.0));
  pool.push(make_node(-1, 20.0));
  EXPECT_EQ(pool.prune_worse_than(5.0), 2);
  EXPECT_EQ(pool.anatomy().pruned_leaves, 2);
  EXPECT_EQ(pool.active_size(), 1u);
  const int left = pool.pop(-1, 1e300);
  EXPECT_EQ(pool.node(left).bound, 1.0);
}

TEST(NodePool, AnatomyTracksPeakAndDepth) {
  mip::NodePool pool(mip::NodeSelection::BestFirst);
  pool.push(make_node(-1, 0.0, 0));
  pool.push(make_node(-1, 1.0, 3));
  EXPECT_EQ(pool.anatomy().active_peak, 2);
  EXPECT_EQ(pool.anatomy().max_depth, 3);
  EXPECT_EQ(pool.anatomy().total_nodes, 2);
}

TEST(NodePool, RenderHandlesEmptyAndTruncation) {
  mip::NodePool pool(mip::NodeSelection::BestFirst);
  EXPECT_NE(pool.render_ascii().find("empty"), std::string::npos);
  const int root = pool.push(make_node(-1, 0.0));
  ASSERT_EQ(pool.pop(-1, 1e300), root);
  pool.set_state(root, mip::NodeState::Branched);
  for (int i = 0; i < 5; ++i) pool.push(make_node(root, 1.0));
  const std::string art = pool.render_ascii(/*max_nodes=*/3);
  EXPECT_NE(art.find("truncated"), std::string::npos);
}

TEST(NodePool, NamesForEnums) {
  EXPECT_STREQ(mip::node_state_name(mip::NodeState::PrunedLeaf), "pruned");
  EXPECT_STREQ(mip::node_selection_name(mip::NodeSelection::GpuLocality), "gpu-locality");
  EXPECT_STREQ(mip::branch_rule_name(mip::BranchRule::Pseudocost), "pseudocost");
}

TEST(Log, DisabledLevelSkipsEvaluation) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::Error);
  int evaluations = 0;
  GPUMIP_LOG(Debug) << (++evaluations, "never shown");
  EXPECT_EQ(evaluations, 0);
  set_log_level(LogLevel::Debug);
  GPUMIP_LOG(Debug) << (++evaluations, "shown");
  EXPECT_EQ(evaluations, 1);
  set_log_level(saved);
}

TEST(DeviceBlas, GemmMatchesHost) {
  gpu::Device dev;
  Rng rng(7);
  Matrix a = Matrix::random(6, 4, rng), b = Matrix::random(4, 5, rng);
  Matrix expect(6, 5);
  linalg::gemm(1.0, a, b, 0.0, expect);
  auto da = linalg::DeviceMatrix::upload(dev, 0, a);
  auto db = linalg::DeviceMatrix::upload(dev, 0, b);
  linalg::DeviceMatrix dc(dev, 6, 5);
  linalg::dev_gemm(0, 1.0, da, db, 0.0, dc);
  EXPECT_LT(linalg::max_abs_diff(dc.download(0), expect), 1e-13);
}

TEST(DeviceBlas, GerMatchesHost) {
  gpu::Device dev;
  Rng rng(9);
  Matrix a = Matrix::random(5, 3, rng);
  Vector x(5), y(3);
  for (auto& v : x) v = rng.uniform(-1, 1);
  for (auto& v : y) v = rng.uniform(-1, 1);
  Matrix expect = a;
  linalg::ger(2.0, x, y, expect);
  auto da = linalg::DeviceMatrix::upload(dev, 0, a);
  auto dx = linalg::DeviceVector::upload(dev, 0, x);
  auto dy = linalg::DeviceVector::upload(dev, 0, y);
  linalg::dev_ger(0, 2.0, dx, dy, da);
  EXPECT_LT(linalg::max_abs_diff(da.download(0), expect), 1e-13);
}

TEST(DeviceBlas, EtaVectorApplication) {
  gpu::Device dev;
  Rng rng(11);
  Vector y(6);
  for (auto& v : y) v = rng.uniform(-1, 1);
  y[2] += 3.0;
  const linalg::Eta eta = linalg::Eta::from_ftran(y, 2);
  Vector x(6);
  for (auto& v : x) v = rng.uniform(-1, 1);
  Vector expect = x;
  eta.apply(expect);
  auto dx = linalg::DeviceVector::upload(dev, 0, x);
  linalg::dev_apply_eta_vec(0, eta, dx);
  EXPECT_LT(linalg::max_abs_diff(dx.download(0), expect), 1e-14);
}

TEST(DeviceBlas, AssignColUpdatesOneColumn) {
  gpu::Device dev;
  Matrix a = Matrix::identity(4);
  auto da = linalg::DeviceMatrix::upload(dev, 0, a);
  Vector col = {9, 8, 7, 6};
  da.assign_col(0, 2, col);
  Matrix back = da.download(0);
  EXPECT_EQ(back(0, 2), 9.0);
  EXPECT_EQ(back(3, 2), 6.0);
  EXPECT_EQ(back(0, 0), 1.0);
  EXPECT_THROW(da.assign_col(0, 9, col), Error);
}

TEST(QR, RFactorIsUpperTriangularAndConsistent) {
  Rng rng(13);
  Matrix a = Matrix::random(8, 5, rng);
  linalg::HouseholderQR qr(a);
  Matrix r = qr.r();
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < i; ++j) EXPECT_EQ(r(i, j), 0.0);
  }
  // ||A x|| == ||Q^T A x|| == ||R x|| for any x (Q orthogonal).
  Vector x(5);
  for (auto& v : x) v = rng.uniform(-1, 1);
  Vector ax(8, 0.0);
  linalg::gemv(1.0, a, x, 0.0, ax);
  Vector rx(5, 0.0);
  linalg::gemv(1.0, r, x, 0.0, rx);
  EXPECT_NEAR(linalg::nrm2(ax), linalg::nrm2(rx), 1e-10);
}

}  // namespace
}  // namespace gpumip
