// gpumip-lint call graph: over-approximate caller->callee edges across the
// indexed function definitions.
//
// Resolution is name-based and deliberately conservative (DESIGN.md,
// "Static analysis"): a call site `foo(...)` adds edges to EVERY indexed
// function named `foo` (overload sets and same-named methods of different
// classes merge), templated calls `foo<T>(...)` resolve the same way, and
// two indirect mechanisms widen the graph instead of narrowing it.
// Two site classes are excluded because they can never resolve to repo
// code: `std::`-qualified calls, and container-protocol member calls
// (`.begin()`, `->size()`, ...). Everything else merges:
//
//  * address-taken set — any whole-word mention of a known function name
//    that is not a direct call (function pointers, member pointers,
//    callables handed to algorithms) marks that function address-taken;
//  * std::function dispatch — a function that declares a std::function
//    variable/parameter and invokes it gets edges to every address-taken
//    function (it could be calling any of them).
//
// The result errs toward extra edges, never missing ones, so "unreachable
// from a hot-path root" is a sound claim while "reachable" may need a
// justified waiver.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "index.hpp"
#include "lexer.hpp"

namespace gpumip::lint {

struct CallGraph {
  /// Per function (parallel to the FunctionDecl array): indices of known
  /// callees, deduplicated, in first-call order.
  std::vector<std::vector<int>> edges;
  /// Per function: true when its name is ever mentioned without being
  /// directly called (address taken / bound into a callable).
  std::vector<char> address_taken;
  /// Per function: true when it invokes a value it declared with a
  /// std::function type — such a call could reach any address-taken
  /// function, so traversals must add those edges conservatively.
  std::vector<char> calls_function_object;
};

CallGraph build_call_graph(const std::vector<Scanned>& files,
                           const std::vector<FunctionDecl>& functions);

/// All indices of functions whose `name` or `qualified` equals `name`
/// (the multimap behind edge resolution, exposed for manifest matching).
std::unordered_map<std::string, std::vector<int>> function_name_map(
    const std::vector<FunctionDecl>& functions);

}  // namespace gpumip::lint
