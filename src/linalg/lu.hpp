// Dense LU factorization with partial pivoting (getrf/getrs-style).
//
// Used for basis refactorization in the revised simplex (paper sections
// 4.3, 5.1) and as the dense direct solver behind the interior-point
// normal equations when the problem is dense.
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace gpumip::linalg {

class DenseLU {
 public:
  DenseLU() = default;

  /// Factors PA = LU in place; throws NumericalError if singular to
  /// working precision (pivot below `pivot_tol`).
  explicit DenseLU(const Matrix& a, double pivot_tol = 1e-12);

  int order() const noexcept { return lu_.rows(); }
  bool valid() const noexcept { return !lu_.empty(); }

  /// Solves A x = b; returns x.
  Vector solve(std::span<const double> b) const;
  /// Solves Aᵀ x = b; returns x.
  Vector solve_transpose(std::span<const double> b) const;

  /// Explicit inverse (used by the explicit-B⁻¹ simplex backend; the
  /// paper's GPU narrative keeps B⁻¹ as a dense device-resident matrix).
  Matrix inverse() const;

  /// |det A| growth proxy: product of |pivots| (log-scale safe).
  double log_abs_det() const;

  /// Packed LU factors (L unit-lower in strict lower triangle, U upper).
  const Matrix& packed() const noexcept { return lu_; }
  const std::vector<int>& pivots() const noexcept { return pivots_; }

 private:
  Matrix lu_;
  std::vector<int> pivots_;  // pivots_[k] = row swapped with k at step k
};

}  // namespace gpumip::linalg
