// simmpi: an in-process message-passing runtime standing in for MPI (see
// DESIGN.md, hardware substitution). Ranks run as threads; messages are
// byte payloads delivered through per-rank mailboxes; every rank carries a
// simulated clock advanced by local compute charges and by message arrival
// times (Lamport-style: recv_time = max(local, send_time + wire_time)), so
// a run yields both a correct parallel execution and a simulated makespan.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "parallel/schedule.hpp"
#include "support/error.hpp"

namespace gpumip::obs {
class Counter;
class Gauge;
}  // namespace gpumip::obs

namespace gpumip::parallel {

/// Interconnect cost model (InfiniBand-class defaults).
struct NetworkConfig {
  double latency = 2.0e-6;     ///< seconds per message
  double bandwidth = 12.0e9;   ///< bytes/s
  double wire_time(std::size_t bytes) const {
    return latency + static_cast<double>(bytes) / bandwidth;
  }
};

struct Message {
  int source = -1;
  int tag = 0;
  std::vector<std::byte> payload;
  double send_time = 0.0;  ///< sender clock + wire time (arrival time)
  /// Per-(source, dest) send sequence number starting at 1. Identifies one
  /// message uniquely for the delivery trace and for schedule replay, and
  /// lets validators prove per-source FIFO (the reorder-eligibility rule).
  std::uint64_t seq = 0;
};

/// Aggregated traffic statistics of one run.
struct NetworkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  /// Messages still sitting in mailboxes when all ranks exited. Nonzero is
  /// legal for fire-and-forget protocols but usually indicates a lost
  /// message in request/reply ones; the supervisor's MessageAuditor turns
  /// the subproblem-level version of this into a hard shutdown check.
  std::uint64_t undelivered = 0;
};

namespace detail {
struct World;
}

class Comm;

struct RunReport {
  double makespan = 0.0;  ///< max final rank clock
  std::vector<double> rank_clocks;
  NetworkStats network;
  /// Ranks whose body threw an exception of its own. Ranks unwound by the
  /// resulting world teardown (or by a deadlock abort) are not counted.
  int failed_ranks = 0;
  /// The deadlock detector fired (the rethrown error carries the dump).
  bool deadlock_detected = false;
};

/// Extended controls for run_ranks.
struct RunOptions {
  NetworkConfig network;
  ScheduleConfig schedule;
  /// When set, filled with truthful statistics even on the abnormal-exit
  /// path (rank failure or deadlock): final per-rank clocks, traffic
  /// counters, and the messages left undelivered in mailboxes at the time
  /// the world was torn down. The normal return value is unavailable then
  /// because run_ranks rethrows the failing rank's exception.
  RunReport* report_out = nullptr;
};

/// Spawns `n` ranks running `body` and joins them. Exceptions thrown by a
/// rank are rethrown (first one wins) after all ranks stop.
RunReport run_ranks(int n, const std::function<void(Comm&)>& body,
                    NetworkConfig network = {});

/// As above with schedule controls (fuzzing, replay, deadlock detection)
/// and abnormal-exit reporting. When `options.schedule` is default and the
/// GPUMIP_SCHEDULE_* environment knobs are set, they are applied here.
RunReport run_ranks(int n, const std::function<void(Comm&)>& body, const RunOptions& options);

/// Per-rank communicator handle. Valid only inside run_ranks' callback.
class Comm {
 public:
  int rank() const noexcept { return rank_; }
  int size() const noexcept;

  /// Sends bytes to `dest` (non-blocking buffered send). This overload
  /// copies the span into the message; the copied bytes are surfaced by
  /// the `gpumip.simmpi.payload.copy_bytes` counter. Note `{}` is
  /// ambiguous between the overloads — pass an explicit empty
  /// `std::span<const std::byte>{}` for payload-less control messages.
  void send(int dest, int tag, std::span<const std::byte> payload);

  /// Zero-copy send: the buffer (typically `ByteWriter::take()`) moves
  /// straight into the queued Message. Hot senders (subproblem dispatch,
  /// report return) use this path so C8 measures one wire payload, not a
  /// serialization copy on top.
  void send(int dest, int tag, std::vector<std::byte>&& payload);

  /// Blocking receive; source/tag of -1 match anything.
  Message recv(int source = -1, int tag = -1);

  /// Non-blocking receive; returns false if no matching message queued.
  bool try_recv(Message& out, int source = -1, int tag = -1);

  /// Local simulated clock.
  double now() const noexcept { return clock_; }
  /// Charges local compute time.
  void advance(double seconds) { clock_ += seconds; }

  /// Simple synchronizing barrier (also aligns simulated clocks).
  void barrier();

 private:
  friend struct detail::World;
  friend RunReport run_ranks(int, const std::function<void(Comm&)>&, const RunOptions&);
  Comm(detail::World* world, int rank) : world_(world), rank_(rank) {}
  [[noreturn]] void throw_aborted() const;
  /// Binds the cached per-rank metric handles (no-op without GPUMIP_OBS).
  void obs_bind();
  detail::World* world_;
  int rank_;
  double clock_ = 0.0;
  std::vector<std::uint64_t> send_seq_;  ///< next per-destination sequence
  // Cached per-rank metric handles: the names are dynamic
  // ("simmpi.rank<r>.…"), so the static-cache form of the obs macros cannot
  // be used; a registry lookup per send would dominate the send cost.
  obs::Counter* obs_sent_msgs_ = nullptr;
  obs::Counter* obs_sent_bytes_ = nullptr;
  obs::Gauge* obs_idle_seconds_ = nullptr;
};

// --- serialization helpers for message payloads ---

class ByteWriter {
 public:
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void write(const T& value) {
    // resize+memcpy rather than insert(end, p, p+n): GCC 12's -O2
    // -Wstringop-overflow false-positives on the insert reallocation path
    // once surrounding code is inlined differently.
    const std::size_t at = buffer_.size();
    // gpumip-lint: hot-alloc(serialization buffer growth, geometric; take() then moves it into the zero-copy send)
    buffer_.resize(at + sizeof(T));
    std::memcpy(buffer_.data() + at, &value, sizeof(T));
  }
  void write_doubles(std::span<const double> values);
  void write_ints(std::span<const int> values);
  /// Surrenders the serialized bytes. Rvalue-qualified: the writer is spent
  /// afterwards, so the call site must say so — `std::move(w).take()` —
  /// which is exactly the consume gpumip-lint R10 then tracks. The
  /// moved-from buffer is re-cleared, so a (moved-from) writer can be
  /// reused by writing again.
  [[nodiscard]] std::vector<std::byte> take() && {
    // gpumip-lint: hot-alloc(move construction steals buffer_'s storage — no allocation; clear() on the emptied vector keeps it reusable)
    std::vector<std::byte> out = std::move(buffer_);
    buffer_.clear();
    return out;
  }
  std::size_t size() const noexcept { return buffer_.size(); }

 private:
  std::vector<std::byte> buffer_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T read() {
    // Subtraction form: pos_ <= size() always holds, so this cannot wrap —
    // unlike `pos_ + sizeof(T) <= size()`, which overflows for adversarial
    // inputs. A short buffer is wire corruption, hence kProtocolError.
    check_protocol(sizeof(T) <= data_.size() - pos_, "ByteReader: out of data");
    T value;
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }
  std::vector<double> read_doubles();
  std::vector<int> read_ints();
  bool exhausted() const noexcept { return pos_ == data_.size(); }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace gpumip::parallel
