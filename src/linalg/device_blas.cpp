#include "linalg/device_blas.hpp"

#include <algorithm>
#include <cmath>

namespace gpumip::linalg {

using gpu::KernelCost;

double occupancy_for_elements(std::size_t elements) {
  constexpr double kSaturation = 131072.0;  // ~80 SMs x 2048 threads, loosely
  return std::clamp(static_cast<double>(elements) / kSaturation, 1.0 / 1024.0, 1.0);
}

DeviceMatrix::DeviceMatrix(gpu::Device& device, int rows, int cols, std::string label)
    : buffer_(device.alloc_doubles(static_cast<std::size_t>(rows) * cols, std::move(label))),
      rows_(rows),
      cols_(cols) {}

DeviceMatrix DeviceMatrix::upload(gpu::Device& device, gpu::StreamId stream, const Matrix& host,
                                  std::string label) {
  DeviceMatrix out(device, host.rows(), host.cols(), std::move(label));
  device.copy_h2d(stream, out.buffer_, host.data(), host.size() * sizeof(double));
  return out;
}

Matrix DeviceMatrix::download(gpu::StreamId stream) const {
  Matrix host(rows_, cols_);
  device()->copy_d2h(stream, buffer_, host.data(), host.size() * sizeof(double));
  return host;
}

void DeviceMatrix::assign(gpu::StreamId stream, const Matrix& host) {
  check_arg(host.rows() == rows_ && host.cols() == cols_, "DeviceMatrix::assign shape mismatch");
  device()->copy_h2d(stream, buffer_, host.data(), host.size() * sizeof(double));
}

void DeviceMatrix::assign_col(gpu::StreamId stream, int col, std::span<const double> values) {
  check_arg(col >= 0 && col < cols_, "DeviceMatrix::assign_col: bad column");
  check_arg(static_cast<int>(values.size()) == rows_, "DeviceMatrix::assign_col: size mismatch");
  device()->copy_h2d(stream, buffer_, values.data(), values.size_bytes(),
                     static_cast<std::size_t>(col) * rows_ * sizeof(double));
}

DeviceVector::DeviceVector(gpu::Device& device, int n, std::string label)
    : buffer_(device.alloc_doubles(static_cast<std::size_t>(n), std::move(label))), n_(n) {}

DeviceVector DeviceVector::upload(gpu::Device& device, gpu::StreamId stream,
                                  std::span<const double> host, std::string label) {
  DeviceVector out(device, static_cast<int>(host.size()), std::move(label));
  device.copy_h2d(stream, out.buffer_, host.data(), host.size_bytes());
  return out;
}

Vector DeviceVector::download(gpu::StreamId stream) const {
  Vector host(static_cast<std::size_t>(n_));
  device()->copy_d2h(stream, buffer_, host.data(), host.size() * sizeof(double));
  return host;
}

void DeviceVector::assign(gpu::StreamId stream, std::span<const double> host) {
  check_arg(static_cast<int>(host.size()) == n_, "DeviceVector::assign size mismatch");
  device()->copy_h2d(stream, buffer_, host.data(), host.size_bytes());
}

namespace {

gpu::Device& same_device(const DeviceMatrix& a, const DeviceVector& v) {
  check_arg(a.device() != nullptr && a.device() == v.device(),
            "device op: operands must live on the same device");
  return *a.device();
}

}  // namespace

void dev_gemv(gpu::StreamId stream, double alpha, const DeviceMatrix& a, const DeviceVector& x,
              double beta, DeviceVector& y) {
  check_arg(x.size() == a.cols() && y.size() == a.rows(), "dev_gemv: shape mismatch");
  gpu::Device& device = same_device(a, x);
  const std::size_t mn = static_cast<std::size_t>(a.rows()) * a.cols();
  KernelCost cost = KernelCost::dense(2.0 * static_cast<double>(mn), static_cast<double>(mn));
  cost.occupancy = occupancy_for_elements(mn);
  device.launch(stream, cost, [&, alpha, beta] {
    const double* ad = a.data();
    auto xs = x.span();
    auto ys = y.span();
    for (int r = 0; r < a.rows(); ++r) ys[static_cast<std::size_t>(r)] *= beta;
    for (int c = 0; c < a.cols(); ++c) {
      const double xc = alpha * xs[static_cast<std::size_t>(c)];
      if (xc == 0.0) continue;
      const double* col = ad + static_cast<std::size_t>(c) * a.rows();
      for (int r = 0; r < a.rows(); ++r) ys[static_cast<std::size_t>(r)] += xc * col[r];
    }
  });
}

void dev_gemv_t(gpu::StreamId stream, double alpha, const DeviceMatrix& a, const DeviceVector& x,
                double beta, DeviceVector& y) {
  check_arg(x.size() == a.rows() && y.size() == a.cols(), "dev_gemv_t: shape mismatch");
  gpu::Device& device = same_device(a, x);
  const std::size_t mn = static_cast<std::size_t>(a.rows()) * a.cols();
  KernelCost cost = KernelCost::dense(2.0 * static_cast<double>(mn), static_cast<double>(mn));
  cost.occupancy = occupancy_for_elements(mn);
  device.launch(stream, cost, [&, alpha, beta] {
    const double* ad = a.data();
    auto xs = x.span();
    auto ys = y.span();
    for (int c = 0; c < a.cols(); ++c) {
      const double* col = ad + static_cast<std::size_t>(c) * a.rows();
      double sum = 0.0;
      for (int r = 0; r < a.rows(); ++r) sum += col[r] * xs[static_cast<std::size_t>(r)];
      ys[static_cast<std::size_t>(c)] = alpha * sum + beta * ys[static_cast<std::size_t>(c)];
    }
  });
}

void dev_gemm(gpu::StreamId stream, double alpha, const DeviceMatrix& a, const DeviceMatrix& b,
              double beta, DeviceMatrix& c) {
  check_arg(a.cols() == b.rows() && c.rows() == a.rows() && c.cols() == b.cols(),
            "dev_gemm: shape mismatch");
  gpu::Device& device = *a.device();
  const double flops = 2.0 * static_cast<double>(a.rows()) * a.cols() * b.cols();
  const std::size_t touched = static_cast<std::size_t>(a.rows()) * a.cols() +
                              static_cast<std::size_t>(b.rows()) * b.cols() +
                              static_cast<std::size_t>(c.rows()) * c.cols();
  KernelCost cost = KernelCost::dense(flops, static_cast<double>(touched));
  cost.occupancy = occupancy_for_elements(static_cast<std::size_t>(c.rows()) * c.cols());
  device.launch(stream, cost, [&, alpha, beta] {
    for (int j = 0; j < c.cols(); ++j) {
      double* cj = c.data() + static_cast<std::size_t>(j) * c.rows();
      for (int i = 0; i < c.rows(); ++i) cj[i] *= beta;
      const double* bj = b.data() + static_cast<std::size_t>(j) * b.rows();
      for (int k = 0; k < a.cols(); ++k) {
        const double bkj = alpha * bj[k];
        if (bkj == 0.0) continue;
        const double* ak = a.data() + static_cast<std::size_t>(k) * a.rows();
        for (int i = 0; i < a.rows(); ++i) cj[i] += ak[i] * bkj;
      }
    }
  });
}

void dev_ger(gpu::StreamId stream, double alpha, const DeviceVector& x, const DeviceVector& y,
             DeviceMatrix& a) {
  check_arg(x.size() == a.rows() && y.size() == a.cols(), "dev_ger: shape mismatch");
  gpu::Device& device = *a.device();
  const std::size_t mn = static_cast<std::size_t>(a.rows()) * a.cols();
  KernelCost cost = KernelCost::dense(2.0 * static_cast<double>(mn), static_cast<double>(mn));
  cost.occupancy = occupancy_for_elements(mn);
  device.launch(stream, cost, [&, alpha] {
    auto xs = x.span();
    auto ys = y.span();
    for (int c = 0; c < a.cols(); ++c) {
      const double yc = alpha * ys[static_cast<std::size_t>(c)];
      if (yc == 0.0) continue;
      double* col = a.data() + static_cast<std::size_t>(c) * a.rows();
      for (int r = 0; r < a.rows(); ++r) col[r] += xs[static_cast<std::size_t>(r)] * yc;
    }
  });
}

std::vector<int> dev_getrf(gpu::StreamId stream, DeviceMatrix& a) {
  check_arg(a.rows() == a.cols(), "dev_getrf: square matrix required");
  gpu::Device& device = *a.device();
  const int n = a.rows();
  std::vector<int> pivots(static_cast<std::size_t>(n));
  const double flops = (2.0 / 3.0) * std::pow(static_cast<double>(n), 3.0);
  KernelCost cost = KernelCost::dense(flops, static_cast<double>(n) * n);
  cost.occupancy = occupancy_for_elements(static_cast<std::size_t>(n) * n);
  bool singular = false;
  device.launch(stream, cost, [&] {
    double* d = a.data();
    auto at = [&](int r, int c) -> double& { return d[static_cast<std::size_t>(c) * n + r]; };
    for (int k = 0; k < n; ++k) {
      int pivot_row = k;
      double pivot_abs = std::fabs(at(k, k));
      for (int i = k + 1; i < n; ++i) {
        const double v = std::fabs(at(i, k));
        if (v > pivot_abs) {
          pivot_abs = v;
          pivot_row = i;
        }
      }
      if (pivot_abs < 1e-12) {
        singular = true;
        return;
      }
      pivots[static_cast<std::size_t>(k)] = pivot_row;
      if (pivot_row != k) {
        for (int c = 0; c < n; ++c) std::swap(at(k, c), at(pivot_row, c));
      }
      const double inv = 1.0 / at(k, k);
      for (int i = k + 1; i < n; ++i) {
        const double mult = at(i, k) * inv;
        at(i, k) = mult;
        if (mult == 0.0) continue;
        for (int c = k + 1; c < n; ++c) at(i, c) -= mult * at(k, c);
      }
    }
  });
  if (singular) throw NumericalError("dev_getrf: numerically singular matrix");
  return pivots;
}

void dev_getrs(gpu::StreamId stream, const DeviceMatrix& lu, const std::vector<int>& pivots,
               DeviceVector& b) {
  const int n = lu.rows();
  check_arg(lu.cols() == n && b.size() == n && static_cast<int>(pivots.size()) == n,
            "dev_getrs: shape mismatch");
  gpu::Device& device = *lu.device();
  KernelCost cost = KernelCost::dense(2.0 * static_cast<double>(n) * n,
                                      static_cast<double>(n) * n);
  cost.occupancy = occupancy_for_elements(static_cast<std::size_t>(n) * n);
  device.launch(stream, cost, [&] {
    const double* d = lu.data();
    auto at = [&](int r, int c) { return d[static_cast<std::size_t>(c) * n + r]; };
    auto xs = b.span();
    for (int k = 0; k < n; ++k) {
      const int p = pivots[static_cast<std::size_t>(k)];
      if (p != k) std::swap(xs[static_cast<std::size_t>(k)], xs[static_cast<std::size_t>(p)]);
    }
    for (int i = 0; i < n; ++i) {
      double sum = xs[static_cast<std::size_t>(i)];
      for (int j = 0; j < i; ++j) sum -= at(i, j) * xs[static_cast<std::size_t>(j)];
      xs[static_cast<std::size_t>(i)] = sum;  // unit diagonal L
    }
    for (int i = n - 1; i >= 0; --i) {
      double sum = xs[static_cast<std::size_t>(i)];
      for (int j = i + 1; j < n; ++j) sum -= at(i, j) * xs[static_cast<std::size_t>(j)];
      xs[static_cast<std::size_t>(i)] = sum / at(i, i);
    }
  });
}

void dev_apply_eta(gpu::StreamId stream, const Eta& eta, DeviceMatrix& binv) {
  check_arg(binv.rows() == static_cast<int>(eta.column.size()), "dev_apply_eta: shape mismatch");
  gpu::Device& device = *binv.device();
  const std::size_t mn = static_cast<std::size_t>(binv.rows()) * binv.cols();
  KernelCost cost = KernelCost::dense(2.0 * static_cast<double>(mn), static_cast<double>(mn));
  cost.occupancy = occupancy_for_elements(mn);
  device.launch(stream, cost, [&] {
    for (int c = 0; c < binv.cols(); ++c) {
      double* col = binv.data() + static_cast<std::size_t>(c) * binv.rows();
      const double xr = col[eta.pivot_row];
      if (xr == 0.0) continue;
      for (int r = 0; r < binv.rows(); ++r) col[r] += eta.column[static_cast<std::size_t>(r)] * xr;
      col[eta.pivot_row] = eta.column[static_cast<std::size_t>(eta.pivot_row)] * xr;
    }
  });
}

void dev_apply_eta_vec(gpu::StreamId stream, const Eta& eta, DeviceVector& x) {
  check_arg(x.size() == static_cast<int>(eta.column.size()), "dev_apply_eta_vec: shape mismatch");
  gpu::Device& device = *x.device();
  const std::size_t n = static_cast<std::size_t>(x.size());
  KernelCost cost = KernelCost::dense(2.0 * static_cast<double>(n), static_cast<double>(n));
  cost.occupancy = occupancy_for_elements(n);
  device.launch(stream, cost, [&] { eta.apply(x.span()); });
}

}  // namespace gpumip::linalg
