#include "parallel/schedule.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "parallel/simmpi.hpp"
#include "support/assert.hpp"
#include "support/error.hpp"

namespace gpumip::parallel {

// ---- trace serialization ---------------------------------------------------

std::string serialize_trace(const DeliveryTrace& trace) {
  std::ostringstream out;
  out << "gpumip-delivery-trace v1 " << trace.deliveries.size() << "\n";
  char clock_hex[64];
  for (const DeliveryRecord& record : trace.deliveries) {
    // Hex-float so a replayed run sees the exact clock bits.
    std::snprintf(clock_hex, sizeof(clock_hex), "%a", record.clock);
    out << record.rank << ' ' << record.source << ' ' << record.tag << ' ' << record.seq << ' '
        << clock_hex << "\n";
  }
  return out.str();
}

DeliveryTrace deserialize_trace(const std::string& text) {
  std::istringstream in(text);
  std::string magic, version;
  std::size_t count = 0;
  if (!(in >> magic >> version >> count) || magic != "gpumip-delivery-trace" || version != "v1") {
    throw Error(ErrorCode::kIoError, "delivery trace: bad header");
  }
  DeliveryTrace trace;
  trace.deliveries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    DeliveryRecord record;
    std::string clock_hex;
    if (!(in >> record.rank >> record.source >> record.tag >> record.seq >> clock_hex)) {
      throw Error(ErrorCode::kIoError,
                  "delivery trace: truncated at record " + std::to_string(i));
    }
    record.clock = std::strtod(clock_hex.c_str(), nullptr);
    if (record.rank < 0 || record.source < 0 || record.seq == 0) {
      throw Error(ErrorCode::kIoError,
                  "delivery trace: invalid record " + std::to_string(i));
    }
    trace.deliveries.push_back(record);
  }
  return trace;
}

void save_trace(const DeliveryTrace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw Error(ErrorCode::kIoError, "cannot open trace file for writing: " + path);
  out << serialize_trace(trace);
  if (!out) throw Error(ErrorCode::kIoError, "short write to trace file: " + path);
}

DeliveryTrace load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error(ErrorCode::kIoError, "cannot open trace file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return deserialize_trace(buffer.str());
}

// ---- environment knobs -----------------------------------------------------

const ScheduleEnv& schedule_env() {
  // Parsed once; std::getenv races with setenv, so keep the single read
  // site here (magic-static init is thread-safe).
  static const ScheduleEnv env = [] {
    ScheduleEnv parsed;
    // NOLINTBEGIN(concurrency-mt-unsafe): one-time read at first use.
    const char* seed = std::getenv("GPUMIP_SCHEDULE_SEED");
    const char* trace = std::getenv("GPUMIP_SCHEDULE_TRACE");
    const char* replay = std::getenv("GPUMIP_SCHEDULE_REPLAY");
    // NOLINTEND(concurrency-mt-unsafe)
    if (seed != nullptr && *seed != '\0') {
      char* end = nullptr;
      const unsigned long long value = std::strtoull(seed, &end, 10);
      check_arg(end != nullptr && *end == '\0',
                std::string("GPUMIP_SCHEDULE_SEED is not an integer: ") + seed);
      parsed.seed = static_cast<std::uint64_t>(value);
    }
    if (trace != nullptr) parsed.trace_path = trace;
    if (replay != nullptr) parsed.replay_path = replay;
    return parsed;
  }();
  return env;
}

namespace detail {

// ---- scheduler lifecycle ---------------------------------------------------

void Scheduler::init(int n, const ScheduleConfig& config) {
  config_ = config;
  size_ = n;
  record_internally_ = config.record != nullptr;
  ranks_.assign(static_cast<std::size_t>(n), RankState{});
  replay_plan_.assign(static_cast<std::size_t>(n), {});
  if (config_.replay != nullptr) {
    for (const DeliveryRecord& record : config_.replay->deliveries) {
      if (record.rank >= 0 && record.rank < n) {
        replay_plan_[static_cast<std::size_t>(record.rank)].push_back(record);
      }
    }
  }
  yield_rngs_.clear();
  insert_rngs_.clear();
  for (int r = 0; r < n; ++r) {
    // Distinct streams per rank/mailbox; the golden-ratio constant keeps
    // nearby seeds from producing correlated streams.
    const std::uint64_t salt = 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(r + 1);
    yield_rngs_.emplace_back(config_.seed ^ salt);
    insert_rngs_.emplace_back(~config_.seed ^ salt);
  }
}

// ---- fuzzing hooks ---------------------------------------------------------

void Scheduler::perturb(int rank) {
  if (!config_.fuzz) return;
  auto& rng = yield_rngs_[static_cast<std::size_t>(rank)];
  // 0-3 yields: enough to shuffle which thread wins the next mailbox lock
  // without turning the simulator into a sleep test.
  const auto yields = static_cast<int>(rng() % 4);
  for (int i = 0; i < yields; ++i) std::this_thread::yield();
}

bool Scheduler::spurious_try_recv_failure(int rank) {
  if (!config_.fuzz || config_.replay != nullptr) return false;
  auto& rng = yield_rngs_[static_cast<std::size_t>(rank)];
  const double draw = static_cast<double>(rng() >> 11) * 0x1.0p-53;
  return draw < config_.spurious_try_recv;
}

std::size_t Scheduler::overtake(int dest, std::size_t eligible) {
  if (!config_.fuzz || eligible == 0) return 0;
  auto& rng = insert_rngs_[static_cast<std::size_t>(dest)];
  return static_cast<std::size_t>(rng() % (eligible + 1));
}

const DeliveryRecord* Scheduler::replay_next(int rank) const {
  if (config_.replay == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(mutex_);
  const RankState& state = ranks_[static_cast<std::size_t>(rank)];
  const auto& plan = replay_plan_[static_cast<std::size_t>(rank)];
  if (state.replay_pos >= plan.size()) return nullptr;
  return &plan[state.replay_pos];
}

// ---- wait-for graph events -------------------------------------------------

void Scheduler::on_send(int rank, int dest, const MsgHeader& header, double clock) {
  std::lock_guard<std::mutex> lock(mutex_);
  ranks_[static_cast<std::size_t>(rank)].clock = clock;
  // The mirror header goes in BEFORE the message is enqueued (see
  // Comm::send), so the detector can only over-estimate progress — it
  // never declares a deadlock while a delivery is materializing.
  ranks_[static_cast<std::size_t>(dest)].inbox.push_back(header);
}

void Scheduler::on_delivered(int rank, const Message& msg, double clock) {
  std::lock_guard<std::mutex> lock(mutex_);
  RankState& state = ranks_[static_cast<std::size_t>(rank)];
  state.phase = Phase::Running;
  state.want_source = -1;
  state.want_tag = -1;
  state.want_seq = 0;
  state.clock = clock;
  for (auto it = state.inbox.begin(); it != state.inbox.end(); ++it) {
    if (it->source == msg.source && it->seq == msg.seq) {
      state.inbox.erase(it);
      break;
    }
  }
  if (config_.replay != nullptr) {
    const auto& plan = replay_plan_[static_cast<std::size_t>(rank)];
    if (state.replay_pos < plan.size()) {
      const DeliveryRecord& expect = plan[state.replay_pos];
      if (expect.source != msg.source || expect.seq != msg.seq) {
        throw Error(ErrorCode::kInternal,
                    "schedule replay diverged: rank " + std::to_string(rank) + " delivered (src " +
                        std::to_string(msg.source) + ", seq " + std::to_string(msg.seq) +
                        ") but the trace expected (src " + std::to_string(expect.source) +
                        ", seq " + std::to_string(expect.seq) + ")");
      }
      ++state.replay_pos;
    }
  }
  if (record_internally_) {
    trace_.deliveries.push_back({rank, msg.source, msg.tag, msg.seq, clock});
  }
}

bool Scheduler::on_block_recv(int rank, int source, int tag, const DeliveryRecord* expect,
                              double clock) {
  std::lock_guard<std::mutex> lock(mutex_);
  RankState& state = ranks_[static_cast<std::size_t>(rank)];
  state.phase = Phase::BlockedRecv;
  state.clock = clock;
  if (expect != nullptr) {
    state.want_source = expect->source;
    state.want_tag = -1;
    state.want_seq = expect->seq;
  } else {
    state.want_source = source;
    state.want_tag = tag;
    state.want_seq = 0;
  }
  return detect_locked();
}

bool Scheduler::on_block_barrier(int rank, double clock) {
  std::lock_guard<std::mutex> lock(mutex_);
  RankState& state = ranks_[static_cast<std::size_t>(rank)];
  state.phase = Phase::BlockedBarrier;
  state.clock = clock;
  return detect_locked();
}

void Scheduler::on_barrier_release() {
  std::lock_guard<std::mutex> lock(mutex_);
  // Everyone registered at this point belongs to the generation that just
  // completed (a next-generation waiter cannot register before the release
  // that lets it re-enter the barrier), so all of them are runnable: do not
  // let the detector count a released-but-not-yet-woken rank as blocked.
  for (RankState& state : ranks_) {
    if (state.phase == Phase::BlockedBarrier) state.phase = Phase::Running;
  }
}

void Scheduler::on_unblock(int rank, double clock) {
  std::lock_guard<std::mutex> lock(mutex_);
  RankState& state = ranks_[static_cast<std::size_t>(rank)];
  if (state.phase != Phase::Exited) state.phase = Phase::Running;
  state.want_source = -1;
  state.want_tag = -1;
  state.want_seq = 0;
  state.clock = clock;
}

bool Scheduler::on_exit(int rank, bool failed, double clock) {
  std::lock_guard<std::mutex> lock(mutex_);
  RankState& state = ranks_[static_cast<std::size_t>(rank)];
  state.phase = Phase::Exited;
  state.failed = failed;
  state.clock = clock;
  // A failed rank already aborts the world; only a normal exit can strand
  // survivors silently.
  return failed ? false : detect_locked();
}

// ---- deadlock detection ----------------------------------------------------

bool Scheduler::header_satisfies(const MsgHeader& header, const RankState& state) const {
  if (state.want_seq != 0) {
    return header.source == state.want_source && header.seq == state.want_seq;
  }
  return (state.want_source < 0 || header.source == state.want_source) &&
         (state.want_tag < 0 || header.tag == state.want_tag);
}

bool Scheduler::detect_locked() {
  if (!config_.detect_deadlock || deadlock_fired_) return false;
  // A failed rank means a teardown abort is already in flight; survivors
  // blocked on the dead rank are its victims, not a protocol deadlock.
  for (const RankState& state : ranks_) {
    if (state.failed) return false;
  }
  const auto n = static_cast<std::size_t>(size_);

  // Optimistic progress closure: `can[r]` means rank r may still take a
  // step. Seeds: running ranks, and blocked receivers with a queued
  // matching message. Propagation: a blocked receiver progresses if ANY
  // rank it waits for progresses (that rank might send); a barrier waiter
  // progresses only if EVERY other rank has arrived or can still arrive.
  // Because propagation only ever over-approximates reachability, a rank
  // left unmarked provably can never be woken — no false positives.
  std::vector<char> can(n, 0);
  for (std::size_t r = 0; r < n; ++r) {
    const RankState& state = ranks_[r];
    if (state.phase == Phase::Running) {
      can[r] = 1;
    } else if (state.phase == Phase::BlockedRecv) {
      for (const MsgHeader& header : state.inbox) {
        if (header_satisfies(header, state)) {
          can[r] = 1;
          break;
        }
      }
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t r = 0; r < n; ++r) {
      if (can[r] != 0) continue;
      const RankState& state = ranks_[r];
      if (state.phase == Phase::BlockedRecv) {
        if (state.want_source >= 0) {
          if (can[static_cast<std::size_t>(state.want_source)] != 0) {
            can[r] = 1;
            changed = true;
          }
        } else {
          for (std::size_t s = 0; s < n; ++s) {
            if (s != r && can[s] != 0) {
              can[r] = 1;
              changed = true;
              break;
            }
          }
        }
      } else if (state.phase == Phase::BlockedBarrier) {
        bool all_arrive = true;
        for (std::size_t s = 0; s < n; ++s) {
          if (s == r) continue;
          const Phase phase = ranks_[s].phase;
          if (phase == Phase::Exited || (phase != Phase::BlockedBarrier && can[s] == 0)) {
            all_arrive = false;
            break;
          }
        }
        if (all_arrive) {
          can[r] = 1;
          changed = true;
        }
      }
    }
  }

  bool stuck = false;
  for (std::size_t r = 0; r < n; ++r) {
    const Phase phase = ranks_[r].phase;
    if ((phase == Phase::BlockedRecv || phase == Phase::BlockedBarrier) && can[r] == 0) {
      stuck = true;
      break;
    }
  }
  if (!stuck) return false;

  std::ostringstream report;
  int stuck_count = 0;
  for (std::size_t r = 0; r < n; ++r) {
    const Phase phase = ranks_[r].phase;
    if ((phase == Phase::BlockedRecv || phase == Phase::BlockedBarrier) && can[r] == 0) {
      ++stuck_count;
    }
  }
  report << "simmpi deadlock detected: " << stuck_count
         << " rank(s) can never be woken\n";
  for (std::size_t r = 0; r < n; ++r) {
    report << "  " << describe_rank_locked(static_cast<int>(r));
    if (can[r] == 0 && ranks_[r].phase != Phase::Exited) report << "  [STUCK]";
    report << "\n";
  }
  deadlock_report_ = report.str();
  deadlock_fired_ = true;
  return true;
}

std::string Scheduler::describe_rank_locked(int rank) const {
  const RankState& state = ranks_[static_cast<std::size_t>(rank)];
  std::ostringstream out;
  out << "rank " << rank << ": ";
  switch (state.phase) {
    case Phase::Running:
      out << "running";
      break;
    case Phase::BlockedRecv:
      out << "blocked in recv(source="
          << (state.want_source < 0 ? std::string("any") : std::to_string(state.want_source))
          << ", tag=" << (state.want_tag < 0 ? std::string("any") : std::to_string(state.want_tag));
      if (state.want_seq != 0) out << ", replay seq=" << state.want_seq;
      out << ")";
      break;
    case Phase::BlockedBarrier:
      out << "blocked in barrier()";
      break;
    case Phase::Exited:
      out << (state.failed ? "exited with error" : "exited");
      break;
  }
  out << " at t=" << state.clock << "s; mailbox: [";
  for (std::size_t i = 0; i < state.inbox.size(); ++i) {
    const MsgHeader& header = state.inbox[i];
    if (i != 0) out << ", ";
    out << "from " << header.source << " tag " << header.tag << " seq " << header.seq << " ("
        << header.bytes << " B)";
  }
  out << "]";
  return out.str();
}

bool Scheduler::deadlocked() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return deadlock_fired_;
}

std::string Scheduler::deadlock_report() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return deadlock_report_;
}

DeliveryTrace Scheduler::take_trace() {
  std::lock_guard<std::mutex> lock(mutex_);
  DeliveryTrace out = std::move(trace_);
  // Not a pessimizing move (trace_ is a member, so this is a genuine
  // ownership transfer), but don't leave the member in the moved-from
  // "valid but unspecified" state: re-initialize so a later record/take
  // cycle starts from a documented empty trace.
  trace_ = DeliveryTrace{};
  return out;
}

}  // namespace detail

}  // namespace gpumip::parallel
