// gpumip-lint engine tests (tools/gpumip-lint/): one seeded-violation
// fixture per rule R1-R12 proving the rule fires, the matching clean
// fixture proving it stays quiet, the suppression-file round trip, lexer
// regressions (raw strings, digit separators, annotation extent), the
// call-graph edge cases (overload merge, templates, address-taken,
// std::function widening, std::/container-protocol exclusion), and the
// CFG/dataflow layer behind the lifetime rules (lambda carving, loop back
// edges, switch fallthrough, early returns). These are the same contracts
// scripts/check.sh gate 7 enforces over src/.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "callgraph.hpp"
#include "cfg.hpp"
#include "dataflow.hpp"
#include "index.hpp"
#include "lexer.hpp"
#include "lifetime.hpp"
#include "lint.hpp"

namespace lint = gpumip::lint;

namespace {

lint::Options doc_options() {
  lint::Options options;
  options.metrics_doc =
      "| `gpumip.test.documented.total` | — | — | fixture |\n"
      "| `gpumip.test.documented.seconds` | s | — | fixture |\n"
      "| `gpumip.test.labeled.total{method,rank}` | — | — | fixture |\n";
  options.have_metrics_doc = true;
  return options;
}

std::vector<lint::Finding> lint_one(const std::string& path, const std::string& content,
                                    const lint::Options& options) {
  std::vector<lint::Suppression> none;
  return lint::run_lint({{path, content}}, options, none);
}

bool has_rule(const std::vector<lint::Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const lint::Finding& f) { return f.rule == rule; });
}

}  // namespace

// ---- R1: memory-space confinement -----------------------------------------

TEST(LintR1, RawDeviceAccessOutsideDeviceContextFires) {
  const auto findings = lint_one("src/mip/fixture.cpp",
                                 "void f(B& b) { auto s = b.as<double>(); }\n", doc_options());
  ASSERT_TRUE(has_rule(findings, "R1"));
  EXPECT_EQ(findings[0].line, 1);
}

TEST(LintR1, DeviceContextFilesAreExempt) {
  const std::string code = "void f(B& b) { auto s = b.as<double>(); }\n";
  for (const char* path : {"src/linalg/batched.cpp", "src/linalg/device_blas.hpp",
                           "src/sparse/device_sparse.cpp", "src/gpu/device.cpp"}) {
    EXPECT_FALSE(has_rule(lint_one(path, code, doc_options()), "R1")) << path;
  }
  // Stem matching is exact: a lookalike file is NOT exempt.
  EXPECT_TRUE(has_rule(lint_one("src/gpu/device_other.cpp", code, doc_options()), "R1"));
}

TEST(LintR1, AnnotationWithReasonWaives) {
  const auto findings =
      lint_one("src/mip/fixture.cpp",
               "// gpumip-lint: device-context(inspects staged kernel input)\n"
               "void f(B& b) { auto s = b.as<double>(); }\n",
               doc_options());
  EXPECT_FALSE(has_rule(findings, "R1"));
}

TEST(LintR1, MalformedAnnotationIsItselfAFinding) {
  const auto findings = lint_one("src/mip/fixture.cpp",
                                 "// gpumip-lint: device-context()\n"
                                 "void f() {}\n",
                                 doc_options());
  EXPECT_TRUE(has_rule(findings, "SUP"));
}

// ---- R2: transfer accounting ----------------------------------------------

TEST(LintR2, RawByteCopyOutsideTransferEngineFires) {
  for (const char* prim : {"std::memcpy(d, s, n)", "memmove(d, s, n)", "std::memset(d, 0, n)"}) {
    const std::string code = std::string("void f() { ") + prim + "; }\n";
    EXPECT_TRUE(has_rule(lint_one("src/lp/fixture.cpp", code, doc_options()), "R2")) << prim;
  }
}

TEST(LintR2, TransferEngineIsExempt) {
  const auto findings =
      lint_one("src/gpu/device.cpp", "void f() { std::memcpy(d, s, n); }\n", doc_options());
  EXPECT_FALSE(has_rule(findings, "R2"));
}

TEST(LintR2, TypedCopyIntoDeviceSpanFires) {
  const auto findings = lint_one(
      "src/lp/fixture.cpp",
      "void f(B& b) { std::copy(v.begin(), v.end(), b.as<double>().data()); }\n", doc_options());
  EXPECT_TRUE(has_rule(findings, "R2"));
}

TEST(LintR2, HostToHostCopyIsQuiet) {
  const auto findings = lint_one(
      "src/lp/fixture.cpp", "void f() { std::copy(v.begin(), v.end(), w.begin()); }\n",
      doc_options());
  EXPECT_TRUE(findings.empty());
}

TEST(LintR2, CommentAndStringMentionsAreIgnored) {
  const auto findings = lint_one("src/lp/fixture.cpp",
                                 "// memcpy would be wrong here\n"
                                 "const char* kDoc = \"std::memcpy\";\n",
                                 doc_options());
  EXPECT_TRUE(findings.empty());
}

// ---- R3: error contract ----------------------------------------------------

TEST(LintR3, RawStdExceptionFires) {
  EXPECT_TRUE(has_rule(lint_one("src/lp/fixture.cpp",
                                "void f() { throw std::runtime_error(\"boom\"); }\n",
                                doc_options()),
                       "R3"));
  EXPECT_TRUE(has_rule(
      lint_one("src/lp/fixture.cpp", "void f() { throw \"bare\"; }\n", doc_options()), "R3"));
}

TEST(LintR3, DeclaredErrorSubclassIsQuiet) {
  const auto findings = lint_one("src/lp/fixture.cpp",
                                 "struct FixtureError : Error {};\n"
                                 "void f() { throw FixtureError(); }\n",
                                 doc_options());
  EXPECT_FALSE(has_rule(findings, "R3"));
}

TEST(LintR3, SubclassHierarchyIsTransitiveAcrossFiles) {
  // Base declared in one file, derived thrown in another: the collection
  // pass is global, like the real Error hierarchy in support/error.hpp.
  std::vector<lint::Suppression> none;
  const auto findings = lint::run_lint(
      {{"src/support/fixture.hpp", "class MidError : public Error {};\n"},
       {"src/lp/fixture.cpp",
        "struct LeafError : public MidError {};\n"
        "void f() { throw detail::LeafError(\"x\"); }\n"}},
      doc_options(), none);
  EXPECT_FALSE(has_rule(findings, "R3"));
}

TEST(LintR3, RethrowIsQuiet) {
  const auto findings = lint_one(
      "src/lp/fixture.cpp", "void f() { try { g(); } catch (...) { throw; } }\n", doc_options());
  EXPECT_TRUE(findings.empty());
}

// ---- R4: metric-name grammar ----------------------------------------------

TEST(LintR4, NameOutsideGpumipNamespaceFires) {
  EXPECT_TRUE(has_rule(lint_one("src/lp/fixture.cpp",
                                "void f() { GPUMIP_OBS_COUNT(\"lp.fixture.calls\"); }\n",
                                doc_options()),
                       "R4"));
  // Too few components and illegal characters also break the grammar.
  EXPECT_TRUE(has_rule(
      lint_one("src/lp/fixture.cpp", "void f() { GPUMIP_OBS_COUNT(\"gpumip.only\"); }\n",
               doc_options()),
      "R4"));
  EXPECT_TRUE(has_rule(lint_one("src/lp/fixture.cpp",
                                "void f() { GPUMIP_OBS_COUNT(\"gpumip.Fixture.Calls\"); }\n",
                                doc_options()),
                       "R4"));
}

TEST(LintR4, UndocumentedNameFires) {
  EXPECT_TRUE(has_rule(lint_one("src/lp/fixture.cpp",
                                "void f() { GPUMIP_OBS_COUNT(\"gpumip.fixture.undocumented\"); }\n",
                                doc_options()),
                       "R4"));
}

TEST(LintR4, DocumentedConformingNameIsQuiet) {
  const auto findings = lint_one(
      "src/lp/fixture.cpp",
      "void f() { GPUMIP_OBS_COUNT(\"gpumip.test.documented.total\"); }\n"
      "void g() { GPUMIP_OBS_RECORD(\"gpumip.test.documented.seconds\", 0.5); }\n",
      doc_options());
  EXPECT_TRUE(findings.empty());
}

TEST(LintR4, RegistryLookupsAreCheckedToo) {
  EXPECT_TRUE(has_rule(lint_one("src/lp/fixture.cpp",
                                "void f() { obs::counter(\"lp.fixture.calls\").add(1); }\n",
                                doc_options()),
                       "R4"));
}

TEST(LintR4, DynamicNamesAreSkipped) {
  // Rank-indexed names are assembled at runtime; only literals are
  // statically checkable (the runtime export check in gate 6 covers these).
  const auto findings = lint_one(
      "src/lp/fixture.cpp", "void f() { obs::counter(prefix + \".sent.msgs\").add(1); }\n",
      doc_options());
  EXPECT_TRUE(findings.empty());
}

TEST(LintR4, LabelKeysFollowTheKeyGrammar) {
  EXPECT_TRUE(has_rule(
      lint_one("src/lp/fixture.cpp",
               "void f() { GPUMIP_OBS_COUNT_L(\"gpumip.test.labeled.total\","
               " {\"rank-id\", \"0\"}); }\n",
               doc_options()),
      "R4"));
  // Uppercase keys fire even when the base name is documented.
  EXPECT_TRUE(has_rule(
      lint_one("src/lp/fixture.cpp",
               "void f() { obs::gauge(\"gpumip.test.labeled.total\","
               " {{\"Rank\", \"0\"}}).set(1.0); }\n",
               doc_options()),
      "R4"));
}

TEST(LintR4, LabeledFamiliesDocumentInKeyOnlyForm) {
  // Documented family gpumip.test.labeled.total{method,rank}: a call site
  // with those keys (any order, runtime values allowed) is quiet...
  EXPECT_TRUE(lint_one("src/lp/fixture.cpp",
                       "void f(const std::string& r) {"
                       " obs::counter(\"gpumip.test.labeled.total\","
                       " {{\"rank\", r}, {\"method\", \"pdhg\"}}).add(1); }\n",
                       doc_options())
                  .empty());
  // ...while an undocumented key set fires, and so does a labeled use of a
  // name only documented bare.
  EXPECT_TRUE(has_rule(lint_one("src/lp/fixture.cpp",
                                "void f() { GPUMIP_OBS_COUNT_L(\"gpumip.test.labeled.total\","
                                " {\"phase\", \"x\"}); }\n",
                                doc_options()),
                       "R4"));
  EXPECT_TRUE(has_rule(lint_one("src/lp/fixture.cpp",
                                "void f() { GPUMIP_OBS_COUNT_L(\"gpumip.test.documented.total\","
                                " {\"method\", \"x\"}); }\n",
                                doc_options()),
                       "R4"));
}

// ---- Suppressions ----------------------------------------------------------

TEST(LintSuppress, JustifiedEntrySilencesAndIsMarkedUsed) {
  std::vector<lint::Finding> parse_findings;
  auto sups = lint::parse_suppressions(
      "# comment line\n"
      "R2 lp/fixture.cpp std::memcpy -- host-only fixture serialization\n",
      "(suppressions)", parse_findings);
  ASSERT_TRUE(parse_findings.empty());
  ASSERT_EQ(sups.size(), 1u);
  const auto findings = lint::run_lint(
      {{"src/lp/fixture.cpp", "void f() { std::memcpy(d, s, n); }\n"}}, doc_options(), sups);
  EXPECT_TRUE(findings.empty());
  EXPECT_TRUE(sups[0].used);
}

TEST(LintSuppress, StaleEntryIsAFinding) {
  std::vector<lint::Finding> parse_findings;
  auto sups = lint::parse_suppressions("R2 lp/fixture.cpp std::memcpy -- excuse with no offender\n",
                                       "(suppressions)", parse_findings);
  const auto findings =
      lint::run_lint({{"src/lp/clean.cpp", "void f() {}\n"}}, doc_options(), sups);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "SUP");
  EXPECT_NE(findings[0].message.find("stale"), std::string::npos);
}

TEST(LintSuppress, MissingJustificationIsRejected) {
  std::vector<lint::Finding> parse_findings;
  auto sups =
      lint::parse_suppressions("R2 lp/fixture.cpp std::memcpy\n", "(suppressions)", parse_findings);
  EXPECT_TRUE(sups.empty());
  ASSERT_EQ(parse_findings.size(), 1u);
  EXPECT_EQ(parse_findings[0].rule, "SUP");
}

TEST(LintSuppress, WrongRuleOrFileDoesNotMatch) {
  std::vector<lint::Finding> parse_findings;
  auto sups = lint::parse_suppressions(
      "R1 lp/fixture.cpp std::memcpy -- wrong rule\n"
      "R2 mip/other.cpp std::memcpy -- wrong file\n",
      "(suppressions)", parse_findings);
  const auto findings = lint::run_lint(
      {{"src/lp/fixture.cpp", "void f() { std::memcpy(d, s, n); }\n"}}, doc_options(), sups);
  // The R2 finding survives and both entries are reported stale.
  EXPECT_TRUE(has_rule(findings, "R2"));
  EXPECT_EQ(std::count_if(findings.begin(), findings.end(),
                          [](const lint::Finding& f) { return f.rule == "SUP"; }),
            2);
}

// ---- R5: standalone headers -------------------------------------------------

#ifndef GPUMIP_TEST_CXX
#define GPUMIP_TEST_CXX "c++"
#endif

TEST(LintR5, MissingIncludeFiresAndSelfContainedHeaderIsQuiet) {
  namespace fs = std::filesystem;
  const fs::path root = fs::temp_directory_path() / "gpumip_lint_r5";
  fs::create_directories(root / "sub");
  {
    std::ofstream bad(root / "sub" / "bad.hpp");
    bad << "void f(std::string s);\n";  // needs <string> but does not include it
    std::ofstream good(root / "sub" / "good.hpp");
    good << "#include <string>\nvoid g(std::string s);\n";
  }
  const auto findings = lint::check_headers_standalone(
      {"sub/bad.hpp", "sub/good.hpp"}, root.string(), GPUMIP_TEST_CXX,
      (root / "scratch").string());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R5");
  EXPECT_NE(findings[0].file.find("bad.hpp"), std::string::npos);
  fs::remove_all(root);
}

// ---- The shipped gate inputs ----------------------------------------------

TEST(LintGate, SelfTestFixturesAllBehave) {
  std::ostringstream report;
  EXPECT_TRUE(lint::run_self_test(report)) << report.str();
}

// ---- Lexer regressions ------------------------------------------------------
// The scan is the layer every rule trusts: a literal that leaks into `clean`
// produces phantom findings, a swallowed region hides real ones.

namespace {

lint::Scanned scan_fixture(const lint::SourceFile& file) {
  std::vector<lint::Finding> findings;
  lint::Scanned scanned = lint::scan(file, findings);
  EXPECT_TRUE(findings.empty());
  return scanned;
}

}  // namespace

TEST(LintLexer, DigitSeparatorsDoNotOpenCharLiterals) {
  // If 1'000'000 opened a char literal, everything up to the next quote
  // (including the allocation) would be blanked out of `clean`.
  const lint::SourceFile file{"src/fix.cpp",
                              "int big = 1'000'000;\nauto p = std::make_unique<int>(big);\n"};
  const auto scanned = scan_fixture(file);
  EXPECT_NE(lint::find_word(scanned.clean, "make_unique", 0), std::string::npos);
}

TEST(LintLexer, RawStringPrefixesAreBlanked) {
  for (const char* prefix : {"R", "LR", "uR", "u8R", "UR"}) {
    const std::string code =
        std::string("auto s = ") + prefix + "\"(v.push_back(1))\";\nmarker();\n";
    const lint::SourceFile file{"src/fix.cpp", code};
    const auto scanned = scan_fixture(file);
    EXPECT_EQ(lint::find_word(scanned.clean, "push_back", 0), std::string::npos) << prefix;
    EXPECT_NE(lint::find_word(scanned.clean, "marker", 0), std::string::npos) << prefix;
  }
}

TEST(LintLexer, EscapedQuotesStayInsideTheLiteral) {
  const lint::SourceFile file{"src/fix.cpp",
                              "const char* s = \"quote \\\" v.push_back(1)\";\nmarker();\n"};
  const auto scanned = scan_fixture(file);
  EXPECT_EQ(lint::find_word(scanned.clean, "push_back", 0), std::string::npos);
  EXPECT_NE(lint::find_word(scanned.clean, "marker", 0), std::string::npos);
}

TEST(LintLexer, BlockCommentsPreserveLineStructure) {
  const lint::SourceFile file{"src/fix.cpp", "int a;\n/* b\nc */ int d;\nmarker();\n"};
  const auto scanned = scan_fixture(file);
  const std::size_t at = lint::find_word(scanned.clean, "marker", 0);
  ASSERT_NE(at, std::string::npos);
  EXPECT_EQ(lint::line_of(scanned, at), 4);
  EXPECT_EQ(scanned.clean.size(), file.content.size());
}

TEST(LintLexer, AnnotationCoversItsLineAndTheLineBelow) {
  const lint::SourceFile file{
      "src/fix.cpp", "// gpumip-lint: hot-alloc(fixture reason)\nv.push_back(1);\nother();\n"};
  const auto scanned = scan_fixture(file);
  EXPECT_TRUE(lint::has_annotation(scanned, 1, "hot-alloc"));
  EXPECT_TRUE(lint::has_annotation(scanned, 2, "hot-alloc"));
  EXPECT_FALSE(lint::has_annotation(scanned, 3, "hot-alloc"));
  EXPECT_FALSE(lint::has_annotation(scanned, 2, "hot-copy"));
}

// ---- Call-graph edge cases --------------------------------------------------
// Name-based resolution must merge what it cannot distinguish (overloads,
// templates) and widen for indirection (address-taken, std::function) while
// excluding the two site classes that can never be repo code.

namespace {

struct Graphed {
  std::vector<lint::SourceFile> files;
  std::vector<lint::Scanned> scanned;
  std::vector<lint::FunctionDecl> functions;
  lint::CallGraph graph;
};

Graphed build_graph(std::vector<lint::SourceFile> files) {
  Graphed g;
  g.files = std::move(files);
  std::vector<lint::Finding> findings;
  for (const auto& f : g.files) g.scanned.push_back(lint::scan(f, findings));
  g.functions = lint::index_functions(g.scanned);
  g.graph = lint::build_call_graph(g.scanned, g.functions);
  return g;
}

std::vector<int> fn_indices(const Graphed& g, const std::string& qualified) {
  std::vector<int> out;
  for (int i = 0; i < static_cast<int>(g.functions.size()); ++i) {
    if (g.functions[static_cast<std::size_t>(i)].qualified == qualified) out.push_back(i);
  }
  return out;
}

bool has_edge(const Graphed& g, int from, int to) {
  const auto& e = g.graph.edges[static_cast<std::size_t>(from)];
  return std::find(e.begin(), e.end(), to) != e.end();
}

}  // namespace

TEST(LintCallGraph, OverloadSetsMergeUnderOneName) {
  auto g = build_graph({{"src/fix.cpp",
                         "void send(int a) { }\n"
                         "void send(int a, int b) { }\n"
                         "void caller() { send(1); }\n"}});
  const auto sends = fn_indices(g, "send");
  const auto callers = fn_indices(g, "caller");
  ASSERT_EQ(sends.size(), 2u);
  ASSERT_EQ(callers.size(), 1u);
  // One call site, edges to BOTH overloads: the over-approximation.
  EXPECT_TRUE(has_edge(g, callers[0], sends[0]));
  EXPECT_TRUE(has_edge(g, callers[0], sends[1]));
}

TEST(LintCallGraph, ExplicitTemplateArgumentsResolve) {
  auto g = build_graph({{"src/fix.cpp",
                         "template <typename T>\n"
                         "T twice(T v) { return v + v; }\n"
                         "int caller() { return twice<int>(2); }\n"}});
  const auto twice = fn_indices(g, "twice");
  const auto callers = fn_indices(g, "caller");
  ASSERT_EQ(twice.size(), 1u);
  ASSERT_EQ(callers.size(), 1u);
  EXPECT_TRUE(has_edge(g, callers[0], twice[0]));
}

TEST(LintCallGraph, AddressTakenFunctionsAreMarked) {
  auto g = build_graph({{"src/fix.cpp",
                         "void on_ready() { }\n"
                         "void install(void (*cb)()) { }\n"
                         "void setup() { install(on_ready); }\n"}});
  const auto ready = fn_indices(g, "on_ready");
  const auto install = fn_indices(g, "install");
  const auto setup = fn_indices(g, "setup");
  ASSERT_EQ(ready.size(), 1u);
  // Mentioned without parens at the call site -> address taken, no direct edge.
  EXPECT_TRUE(g.graph.address_taken[static_cast<std::size_t>(ready[0])]);
  EXPECT_TRUE(has_edge(g, setup[0], install[0]));
  EXPECT_FALSE(has_edge(g, setup[0], ready[0]));
}

TEST(LintCallGraph, StdFunctionDispatchIsConservative) {
  auto g = build_graph({{"src/fix.cpp",
                         "void handler() { }\n"
                         "void dispatch(const std::function<void()>& f) { f(); }\n"
                         "void wire() { dispatch(handler); }\n"}});
  const auto handler = fn_indices(g, "handler");
  const auto dispatch = fn_indices(g, "dispatch");
  ASSERT_EQ(dispatch.size(), 1u);
  // dispatch invokes a std::function value; traversals must treat it as a
  // call to every address-taken function (handler, bound in wire).
  EXPECT_TRUE(g.graph.calls_function_object[static_cast<std::size_t>(dispatch[0])]);
  EXPECT_TRUE(g.graph.address_taken[static_cast<std::size_t>(handler[0])]);
}

TEST(LintCallGraph, StdQualifiedAndContainerProtocolSitesAreExcluded) {
  auto g = build_graph({{"src/fix.cpp",
                         "void sort(int* a) { }\n"
                         "int size() { return 3; }\n"
                         "void caller(std::vector<int>& v) {\n"
                         "  std::sort(v.begin(), v.end());\n"
                         "  auto n = v.size();\n"
                         "  (void)n;\n"
                         "}\n"}});
  const auto sort = fn_indices(g, "sort");
  const auto size = fn_indices(g, "size");
  const auto callers = fn_indices(g, "caller");
  ASSERT_EQ(callers.size(), 1u);
  // `std::sort` can never be the repo's sort; `v.size()` is the container
  // protocol. Neither may produce an edge.
  EXPECT_FALSE(has_edge(g, callers[0], sort[0]));
  EXPECT_FALSE(has_edge(g, callers[0], size[0]));
}

// ---- R6-R9: hot-path rules over the manifest -------------------------------

namespace {

lint::Options hot_options(const std::string& manifest) {
  lint::Options options = doc_options();
  options.hotpaths = manifest;
  options.have_hotpaths = true;
  options.hotpaths_path = "hotpaths.txt";
  return options;
}

constexpr const char* kObs = "GPUMIP_OBS_COUNT(\"gpumip.test.documented.total\");";

}  // namespace

TEST(LintR6, AllocationReachableThroughTheGraphFires) {
  const std::string code =
      "void helper(std::vector<int>& v) { v.push_back(1); }\n"
      "void hot_root(std::vector<int>& v) { " + std::string(kObs) + " helper(v); }\n";
  const auto findings =
      lint_one("src/fix.cpp", code, hot_options("root hot_root -- fixture\n"));
  ASSERT_TRUE(has_rule(findings, "R6"));
  // The finding names the call chain from the root.
  bool chain_shown = false;
  for (const auto& f : findings) {
    if (f.rule == "R6" && f.message.find("hot_root -> helper") != std::string::npos) {
      chain_shown = true;
    }
  }
  EXPECT_TRUE(chain_shown);
}

TEST(LintR6, HotAllocAnnotationWaivesTheSite) {
  const std::string code =
      "void helper(std::vector<int>& v) {\n"
      "  // gpumip-lint: hot-alloc(fixture reason)\n"
      "  v.push_back(1);\n"
      "}\n"
      "void hot_root(std::vector<int>& v) { " + std::string(kObs) + " helper(v); }\n";
  EXPECT_FALSE(has_rule(lint_one("src/fix.cpp", code, hot_options("root hot_root -- fixture\n")),
                        "R6"));
}

TEST(LintR6, StopEntriesPruneTheTraversal) {
  const std::string code =
      "void helper(std::vector<int>& v) { v.push_back(1); }\n"
      "void hot_root(std::vector<int>& v) { " + std::string(kObs) + " helper(v); }\n";
  EXPECT_FALSE(has_rule(
      lint_one("src/fix.cpp", code,
               hot_options("root hot_root -- fixture\nstop helper -- fixture\n")),
      "R6"));
}

TEST(LintR6, ClassWildcardStopMatchesQualifiedDefinitions) {
  const std::string code =
      "void Util::grow(std::vector<int>& v) { v.push_back(1); }\n"
      "void hot_root(Util& u, std::vector<int>& v) { " + std::string(kObs) + " u.grow(v); }\n";
  EXPECT_TRUE(has_rule(lint_one("src/fix.cpp", code, hot_options("root hot_root -- fixture\n")),
                       "R6"));
  EXPECT_FALSE(has_rule(
      lint_one("src/fix.cpp", code,
               hot_options("root hot_root -- fixture\nstop Util::* -- fixture\n")),
      "R6"));
}

TEST(LintR7, ByValuePayloadPassAndReturnFire) {
  const std::string code =
      "Message make_reply() { return Message{}; }\n"
      "void hot_root(Message m) { " + std::string(kObs) + " make_reply(); }\n";
  const auto findings = lint_one(
      "src/fix.cpp", code,
      hot_options("root hot_root -- fixture\npayload Message -- fixture\n"));
  int r7 = 0;
  for (const auto& f : findings) {
    if (f.rule == "R7") ++r7;
  }
  EXPECT_EQ(r7, 2);  // passed into hot_root, returned from make_reply
}

TEST(LintR7, ReferencesAndHotCopyWaiverAreQuiet) {
  const std::string by_ref =
      "void hot_root(const Message& m) { " + std::string(kObs) + " }\n";
  EXPECT_FALSE(has_rule(
      lint_one("src/fix.cpp", by_ref,
               hot_options("root hot_root -- fixture\npayload Message -- fixture\n")),
      "R7"));
  const std::string waived =
      "// gpumip-lint: hot-copy(fixture reason)\n"
      "void hot_root(Message m) { " + std::string(kObs) + " }\n";
  EXPECT_FALSE(has_rule(
      lint_one("src/fix.cpp", waived,
               hot_options("root hot_root -- fixture\npayload Message -- fixture\n")),
      "R7"));
}

TEST(LintR8, BlockingFiresOnlyUnderWaveRoots) {
  const std::string code =
      "void hot_wave(std::mutex& mu) { " + std::string(kObs) + " mu.lock(); }\n";
  EXPECT_TRUE(
      has_rule(lint_one("src/fix.cpp", code, hot_options("wave hot_wave -- fixture\n")), "R8"));
  // The same body under a plain root is legal: only waves ban blocking.
  EXPECT_FALSE(
      has_rule(lint_one("src/fix.cpp", code, hot_options("root hot_wave -- fixture\n")), "R8"));
}

TEST(LintR8, ManifestDeclaredBlockingPrimitiveFires) {
  const std::string code =
      "void hot_wave() { " + std::string(kObs) + " drain_all(); }\n"
      "void drain_all() { }\n";
  EXPECT_TRUE(has_rule(
      lint_one("src/fix.cpp", code,
               hot_options("wave hot_wave -- fixture\nblocking drain_all -- fixture\n")),
      "R8"));
}

TEST(LintR9, UninstrumentedRootFiresAndObsSiteQuiets) {
  EXPECT_TRUE(has_rule(lint_one("src/fix.cpp", "void hot_root() { work(); }\n",
                                hot_options("root hot_root -- fixture\n")),
                       "R9"));
  EXPECT_FALSE(has_rule(
      lint_one("src/fix.cpp", "void hot_root() { " + std::string(kObs) + " }\n",
               hot_options("root hot_root -- fixture\n")),
      "R9"));
}

TEST(LintHot, StaleManifestEntryIsAFinding) {
  const auto findings =
      lint_one("src/fix.cpp", "void present() { }\n",
               hot_options("root vanished_fn -- this entry matches nothing\n"));
  ASSERT_TRUE(has_rule(findings, "HOT"));
}

TEST(LintHot, MalformedManifestLinesAreFindings) {
  const std::string code = "void hot_root() { " + std::string(kObs) + " }\n";
  // Unknown kind.
  EXPECT_TRUE(has_rule(
      lint_one("src/fix.cpp", code, hot_options("banana hot_root -- fixture\n")), "HOT"));
  // Missing justification separator.
  EXPECT_TRUE(
      has_rule(lint_one("src/fix.cpp", code, hot_options("root hot_root\n")), "HOT"));
}

// ---- CFG builder and dataflow engine ----------------------------------------

TEST(LintCfg, LambdaBodiesAreCarvedIntoSeparateGraphs) {
  std::vector<lint::Finding> fs;
  const lint::SourceFile src{"src/fix.cpp",
                             "void f() { auto cb = [&](int k) { g(k); }; cb(1); h(); }\n"};
  const lint::Scanned scanned = lint::scan(src, fs);
  const auto functions = lint::index_functions({scanned});
  ASSERT_EQ(functions.size(), 1u);
  const auto graphs = lint::build_cfgs(scanned.clean, functions[0].body_begin,
                                       functions[0].body_end, {});
  // The function's own graph plus one graph for the lambda body.
  ASSERT_EQ(graphs.size(), 2u);
  // The lambda body is recorded as carved in the enclosing graph, so
  // statement scans in the function skip it.
  ASSERT_EQ(graphs[0].carved.size(), 1u);
  EXPECT_TRUE(graphs[1].carved.empty());
}

TEST(LintCfg, NoreturnNamesAreCollectedFromAttributes) {
  std::vector<lint::Finding> fs;
  const lint::SourceFile src{
      "src/fix.cpp", "[[noreturn]] void die(int code);\nvoid f() { die(2); }\n"};
  const lint::Scanned scanned = lint::scan(src, fs);
  const auto names = lint::collect_noreturn_names({scanned});
  EXPECT_TRUE(names.count("die") != 0);
  EXPECT_TRUE(names.count("abort") != 0);  // seeded std terminators
}

TEST(LintDataflow, JoinIsKeywiseOrAndFixpointCoversBranches) {
  // Diamond: entry -> {left, right} -> exit. Each arm sets its own key;
  // the exit's IN state must hold the union (may-analysis join).
  lint::Cfg cfg;
  cfg.nodes.resize(4);
  cfg.entry = 0;
  cfg.exit = 1;
  cfg.nodes[0].succ = {2, 3};
  cfg.nodes[2].stmts.push_back({10, 11, lint::StmtKind::kPlain});
  cfg.nodes[2].succ = {1};
  cfg.nodes[3].stmts.push_back({20, 21, lint::StmtKind::kPlain});
  cfg.nodes[3].succ = {1};
  const auto in = lint::fixpoint(
      cfg, {{"seed", 1u}}, [](const lint::CfgStmt& s, lint::AbstractState& st) {
        if (s.begin == 10) {
          st["left"] |= 1u;
        } else {
          st["right"] |= 2u;
        }
      });
  ASSERT_EQ(in.size(), 4u);
  EXPECT_EQ(in[1].at("seed"), 1u);
  EXPECT_EQ(in[1].at("left"), 1u);
  EXPECT_EQ(in[1].at("right"), 2u);
  // The arms do not see each other's facts.
  EXPECT_EQ(in[2].count("left"), 0u);
  EXPECT_EQ(in[3].count("right"), 0u);
}

// ---- R10: use-after-move ----------------------------------------------------

TEST(LintR10, UseAfterMoveFires) {
  const auto findings = lint_one(
      "src/fix.cpp", "void f() { auto v = make(); sink(std::move(v)); use(v.size()); }\n",
      doc_options());
  ASSERT_TRUE(has_rule(findings, "R10"));
  EXPECT_EQ(findings[0].line, 1);
}

TEST(LintR10, ReassignmentAndReinitKill) {
  EXPECT_FALSE(has_rule(
      lint_one("src/fix.cpp",
               "void f() { auto v = make(); sink(std::move(v)); v = make(); use(v.size()); }\n",
               doc_options()),
      "R10"));
  EXPECT_FALSE(has_rule(
      lint_one("src/fix.cpp",
               "void f() { auto v = make(); sink(std::move(v)); v.clear(); use(v.size()); }\n",
               doc_options()),
      "R10"));
}

TEST(LintR10, EarlyReturnInsideLoopKeepsMovedPathApart) {
  // The moving path leaves the function from inside the loop; the use after
  // the loop is only reachable with v intact.
  const auto findings = lint_one("src/fix.cpp",
                                 "void f() {\n"
                                 "  auto v = make();\n"
                                 "  while (go()) {\n"
                                 "    if (bad()) { sink(std::move(v)); return; }\n"
                                 "    step();\n"
                                 "  }\n"
                                 "  use(v.size());\n"
                                 "}\n",
                                 doc_options());
  EXPECT_FALSE(has_rule(findings, "R10"));
}

TEST(LintR10, LoopBackEdgeCarriesTheMovedState) {
  // `continue` instead of `return`: the moved state survives the back edge
  // and reaches both the next iteration and the code after the loop.
  const auto findings = lint_one("src/fix.cpp",
                                 "void f() {\n"
                                 "  auto v = make();\n"
                                 "  while (go()) {\n"
                                 "    if (bad()) { sink(std::move(v)); continue; }\n"
                                 "    step();\n"
                                 "  }\n"
                                 "  use(v.size());\n"
                                 "}\n",
                                 doc_options());
  EXPECT_TRUE(has_rule(findings, "R10"));
}

TEST(LintR10, LambdaCapturingMovedLocalFires) {
  const auto findings = lint_one(
      "src/fix.cpp",
      "void f() { auto v = make(); sink(std::move(v)); auto cb = [v]() { return 0; }; cb(); }\n",
      doc_options());
  EXPECT_TRUE(has_rule(findings, "R10"));
}

TEST(LintR10, MovedOkAnnotationWaives) {
  const auto findings =
      lint_one("src/fix.cpp",
               "void f() { auto v = make(); sink(std::move(v));\n"
               "  use(v.size());  // gpumip-lint: moved-ok(fixture: intentional reuse)\n"
               "}\n",
               doc_options());
  EXPECT_FALSE(has_rule(findings, "R10"));
}

TEST(LintR10, SuppressionRoundTripAndStaleDetection) {
  std::vector<lint::Finding> parse_findings;
  auto sups = lint::parse_suppressions(
      "R10 fix.cpp use(v.size()) -- fixture: reuse audited by hand\n", "(suppressions)",
      parse_findings);
  ASSERT_TRUE(parse_findings.empty());
  auto findings = lint::run_lint(
      {{"src/fix.cpp", "void f() { auto v = make(); sink(std::move(v)); use(v.size()); }\n"}},
      doc_options(), sups);
  EXPECT_FALSE(has_rule(findings, "R10"));
  EXPECT_TRUE(sups[0].used);
  // The same entry against clean code is reported stale.
  auto stale_sups = lint::parse_suppressions(
      "R10 fix.cpp use(v.size()) -- fixture: reuse audited by hand\n", "(suppressions)",
      parse_findings);
  auto stale = lint::run_lint({{"src/fix.cpp", "void f() { work(); }\n"}}, doc_options(),
                              stale_sups);
  EXPECT_TRUE(has_rule(stale, "SUP"));
}

// ---- R11: arena/buffer use-after-reset --------------------------------------

TEST(LintR11, DirectResetThenUseFires) {
  const auto findings = lint_one(
      "src/fix.cpp",
      "void f(Arena& arena) { auto blk = arena.allot(64); arena.reset(); use(blk); }\n",
      doc_options());
  ASSERT_TRUE(has_rule(findings, "R11"));
}

TEST(LintR11, ReDerivingAfterResetQuiets) {
  const auto findings = lint_one("src/fix.cpp",
                                 "void f(Arena& arena) {\n"
                                 "  auto blk = arena.allot(64);\n"
                                 "  arena.reset();\n"
                                 "  blk = arena.allot(64);\n"
                                 "  use(blk);\n"
                                 "}\n",
                                 doc_options());
  EXPECT_FALSE(has_rule(findings, "R11"));
}

TEST(LintR11, SingleBranchResetFiresAsMayAnalysis) {
  const auto findings = lint_one(
      "src/fix.cpp",
      "void f(Arena& arena) { auto blk = arena.allot(64); if (c) arena.reset(); use(blk); }\n",
      doc_options());
  EXPECT_TRUE(has_rule(findings, "R11"));
}

TEST(LintR11, CallGraphProvenResetterFires) {
  const auto findings = lint_one(
      "src/fix.cpp",
      "void shrink(Arena& a) { a.reset(); }\n"
      "void f(Arena& arena) { auto blk = arena.allot(64); shrink(arena); use(blk); }\n",
      doc_options());
  EXPECT_TRUE(has_rule(findings, "R11"));
}

TEST(LintR11, DerivationChainsResolveToTheRoot) {
  // arena -> blk -> p: resetting the arena invalidates the whole chain.
  const auto findings = lint_one("src/fix.cpp",
                                 "void f(Arena& arena) {\n"
                                 "  auto blk = arena.allot(64);\n"
                                 "  auto p = blk.as<double>();\n"
                                 "  arena.reset();\n"
                                 "  use(p);\n"
                                 "}\n",
                                 doc_options());
  EXPECT_TRUE(has_rule(findings, "R11"));
}

TEST(LintR11, ArenaOkAnnotationWaives) {
  const auto findings =
      lint_one("src/fix.cpp",
               "void f(Arena& arena) { auto blk = arena.allot(64); arena.reset();\n"
               "  use(blk);  // gpumip-lint: arena-ok(fixture: slab persists across reset)\n"
               "}\n",
               doc_options());
  EXPECT_FALSE(has_rule(findings, "R11"));
}

// ---- R12: unbalanced instrumentation spans ----------------------------------

namespace {
const char* kBeg = "GPUMIP_TRACE_BEGIN(\"gpumip.fix.span\", 0);";
const char* kEnd = "GPUMIP_TRACE_END(\"gpumip.fix.span\");";
}  // namespace

TEST(LintR12, EarlyReturnInsideOpenSpanFires) {
  const auto findings = lint_one(
      "src/fix.cpp",
      std::string("void f() { ") + kBeg + " if (c) return; " + kEnd + " }\n", doc_options());
  ASSERT_TRUE(has_rule(findings, "R12"));
}

TEST(LintR12, BalancedSpanIsQuiet) {
  const auto findings = lint_one(
      "src/fix.cpp",
      std::string("void f() { if (c) return; ") + kBeg + " work(); " + kEnd + " }\n",
      doc_options());
  EXPECT_FALSE(has_rule(findings, "R12"));
}

TEST(LintR12, SwitchFallthroughUnbalancesTheSpan) {
  const auto findings = lint_one("src/fix.cpp",
                                 std::string("void f(int k) {\n"
                                             "  switch (k) {\n"
                                             "    case 0: ") +
                                     kBeg + " case 1: " + kEnd +
                                     " break;\n"
                                     "  }\n"
                                     "}\n",
                                 doc_options());
  EXPECT_TRUE(has_rule(findings, "R12"));
}

TEST(LintR12, ThrowAndNoreturnCallsEscapeTheSpan) {
  EXPECT_TRUE(has_rule(
      lint_one("src/fix.cpp",
               std::string("void f() { ") + kBeg + " if (bad) throw Error(); " + kEnd + " }\n",
               doc_options()),
      "R12"));
  EXPECT_TRUE(has_rule(
      lint_one("src/fix.cpp",
               std::string("[[noreturn]] void die();\nvoid f() { ") + kBeg +
                   " if (bad) die(); " + kEnd + " }\n",
               doc_options()),
      "R12"));
}

TEST(LintR12, LambdaBodiesBalanceSeparately) {
  // Balanced in both the function and its lambda: quiet. A lambda that
  // leaves its span open fires even though the enclosing function is
  // balanced.
  EXPECT_FALSE(has_rule(
      lint_one("src/fix.cpp",
               std::string("void f() { auto cb = []() { ") + kBeg + " " + kEnd + " }; " + kBeg +
                   " cb(); " + kEnd + " }\n",
               doc_options()),
      "R12"));
  EXPECT_TRUE(has_rule(lint_one("src/fix.cpp",
                                std::string("void f() { auto cb = []() { ") + kBeg +
                                    " }; cb(); " + kBeg + " " + kEnd + " }\n",
                                doc_options()),
                       "R12"));
}

TEST(LintR12, RaiiSpanFormsAreExempt) {
  const auto findings = lint_one(
      "src/fix.cpp",
      "void f() { GPUMIP_TRACE_SCOPE(\"gpumip.fix.span\", 0); if (c) return; work(); }\n",
      doc_options());
  EXPECT_FALSE(has_rule(findings, "R12"));
}

TEST(LintR12, SpanOkAnnotationWaives) {
  const auto findings =
      lint_one("src/fix.cpp",
               std::string("void f() { ") + kBeg +
                   "\n"
                   "  if (c) return;  // gpumip-lint: span-ok(fixture: caller closes)\n"
                   "  " +
                   kEnd + " }\n",
               doc_options());
  EXPECT_FALSE(has_rule(findings, "R12"));
}

TEST(LintR12, SuppressionRoundTrip) {
  std::vector<lint::Finding> parse_findings;
  auto sups = lint::parse_suppressions("R12 fix.cpp return -- fixture: span closed by caller\n",
                                       "(suppressions)", parse_findings);
  ASSERT_TRUE(parse_findings.empty());
  auto findings = lint::run_lint(
      {{"src/fix.cpp",
        std::string("void f() { ") + kBeg + " if (c) return; " + kEnd + " }\n"}},
      doc_options(), sups);
  EXPECT_FALSE(has_rule(findings, "R12"));
  EXPECT_TRUE(sups[0].used);
}

// ---- Lifetime rules: engine-level helpers -----------------------------------

TEST(LintLifetime, CollectResettersPropagatesThroughTheCallGraph) {
  std::vector<lint::Finding> fs;
  const lint::SourceFile src{"src/fix.cpp",
                             "void leaf(Arena& a) { a.reset(); }\n"
                             "void mid(Arena& a) { leaf(a); }\n"
                             "void outer(Arena& a) { mid(a); }\n"
                             "void unrelated() { work(); }\n"};
  const lint::Scanned scanned = lint::scan(src, fs);
  const auto functions = lint::index_functions({scanned});
  const auto graph = lint::build_call_graph({scanned}, functions);
  const auto resetters = lint::collect_resetters({scanned}, functions, graph);
  EXPECT_TRUE(resetters.count("leaf") != 0);
  EXPECT_TRUE(resetters.count("mid") != 0);
  EXPECT_TRUE(resetters.count("outer") != 0);
  EXPECT_TRUE(resetters.count("unrelated") == 0);
}

TEST(LintLifetime, LifetimeRulesFlagDisablesThem) {
  lint::Options options = doc_options();
  options.lifetime_rules = false;
  const auto findings = lint_one(
      "src/fix.cpp", "void f() { auto v = make(); sink(std::move(v)); use(v.size()); }\n",
      options);
  EXPECT_FALSE(has_rule(findings, "R10"));
}

TEST(LintLifetime, RunStatsAndWaivedOutArePopulated) {
  std::vector<lint::Finding> parse_findings;
  auto sups = lint::parse_suppressions(
      "R10 fix.cpp use(v.size()) -- fixture: reuse audited by hand\n", "(suppressions)",
      parse_findings);
  lint::RunStats stats;
  std::vector<lint::Finding> waived;
  auto findings = lint::run_lint(
      {{"src/fix.cpp", "void f() { auto v = make(); sink(std::move(v)); use(v.size()); }\n"}},
      doc_options(), sups, &stats, &waived);
  EXPECT_FALSE(has_rule(findings, "R10"));
  ASSERT_EQ(waived.size(), 1u);
  EXPECT_EQ(waived[0].rule, "R10");
  EXPECT_EQ(stats.files, 1u);
  EXPECT_EQ(stats.functions, 1u);
}

// ---- Token index (the shared word-position cache) ---------------------------

TEST(LintLexer, WordIndexMatchesWholeWordSearch) {
  std::vector<lint::Finding> fs;
  const lint::SourceFile src{"src/fix.cpp",
                             "int move_count;\nvoid f() { auto x = std::move(v); }\n"
                             "// move in a comment\nconst char* s = \"move in a literal\";\n"};
  const lint::Scanned scanned = lint::scan(src, fs);
  const auto& positions = lint::word_positions(scanned, "move");
  // Exactly the one code occurrence: not the identifier move_count, not the
  // comment, not the string literal.
  ASSERT_EQ(positions.size(), 1u);
  EXPECT_EQ(lint::find_word(scanned.clean, "move", 0), positions[0]);
  EXPECT_TRUE(lint::word_positions(scanned, "absent_word").empty());
}

// ---- R13: wire-format symmetry ---------------------------------------------

namespace {

// Shared deserializer fixture: reads double, int, then proves exhaustion.
const char* const kDecodeItem =
    "Item decode_item(std::span<const std::byte> p) {\n"
    "  ByteReader r(p);\n"
    "  Item it;\n"
    "  it.a = r.read<double>();\n"
    "  it.b = r.read<int>();\n"
    "  check_arg(r.exhausted(), \"trailing bytes\");\n"
    "  return it;\n"
    "}\n";

}  // namespace

TEST(LintR13, TypedOpMismatchFires) {
  const auto findings = lint_one("src/parallel/fixture.cpp",
                                 "void encode_item(const Item& it, ByteWriter& w) {\n"
                                 "  w.write<double>(it.a);\n"
                                 "  w.write<double>(it.b);\n"
                                 "}\n" +
                                     std::string(kDecodeItem),
                                 doc_options());
  ASSERT_TRUE(has_rule(findings, "R13"));
}

TEST(LintR13, FieldCountMismatchFires) {
  const auto findings = lint_one("src/parallel/fixture.cpp",
                                 "void encode_item(const Item& it, ByteWriter& w) {\n"
                                 "  w.write<double>(it.a);\n"
                                 "}\n" +
                                     std::string(kDecodeItem),
                                 doc_options());
  EXPECT_TRUE(has_rule(findings, "R13"));
}

TEST(LintR13, MatchingPairIsQuietAndDeducedWriteIsWildcard) {
  // The second write has a deduced template argument -- it must match the
  // typed read<int> on the other side instead of firing.
  const auto findings = lint_one("src/parallel/fixture.cpp",
                                 "void encode_item(const Item& it, ByteWriter& w) {\n"
                                 "  w.write<double>(it.a);\n"
                                 "  w.write(it.b);\n"
                                 "}\n" +
                                     std::string(kDecodeItem),
                                 doc_options());
  EXPECT_FALSE(has_rule(findings, "R13"));
}

TEST(LintR13, BranchAsymmetryFires) {
  // Writer has a conditional extra field; reader decodes unconditionally.
  const auto findings = lint_one("src/parallel/fixture.cpp",
                                 "void encode_item(const Item& it, ByteWriter& w) {\n"
                                 "  w.write<double>(it.a);\n"
                                 "  if (it.extended) { w.write<int>(it.b); }\n"
                                 "}\n" +
                                     std::string(kDecodeItem),
                                 doc_options());
  EXPECT_TRUE(has_rule(findings, "R13"));
}

TEST(LintR13, MirroredCountPrefixedLoopsAreQuiet) {
  const auto findings = lint_one(
      "src/parallel/fixture.cpp",
      "void encode_list(const L& l, ByteWriter& w) {\n"
      "  w.write<std::uint64_t>(l.count);\n"
      "  for (const auto& v : l.items) { w.write_doubles(v); }\n"
      "}\n"
      "L decode_list(std::span<const std::byte> p) {\n"
      "  ByteReader r(p);\n"
      "  L l;\n"
      "  l.count = r.read<std::uint64_t>();\n"
      "  for (std::uint64_t i = 0; i < l.count; ++i) { l.items.push_back(r.read_doubles()); }\n"
      "  check_arg(r.exhausted(), \"trailing bytes\");\n"
      "  return l;\n"
      "}\n",
      doc_options());
  EXPECT_FALSE(has_rule(findings, "R13"));
}

TEST(LintR13, WireOkAnnotationWaives) {
  const auto findings =
      lint_one("src/parallel/fixture.cpp",
               "// gpumip-lint: wire-ok(versioned decode accepts the legacy layout)\n"
               "void encode_item(const Item& it, ByteWriter& w) {\n"
               "  w.write<double>(it.a);\n"
               "}\n" +
                   std::string(kDecodeItem),
               doc_options());
  EXPECT_FALSE(has_rule(findings, "R13"));
}

// ---- R14: tag-protocol coverage --------------------------------------------

TEST(LintR14, UnhandledSentTagFires) {
  const auto findings = lint_one(
      "src/parallel/fixture.cpp", "void p(Comm& c) { c.send(1, kTagPing, payload); }\n",
      doc_options());
  ASSERT_TRUE(has_rule(findings, "R14"));
}

TEST(LintR14, ComparedOrCaseHandledTagIsQuiet) {
  const std::string send_site = "void p(Comm& c) { c.send(1, kTagPing, payload); }\n";
  EXPECT_FALSE(has_rule(
      lint_one("src/parallel/fixture.cpp",
               send_site +
                   "void q(Comm& c) { Message m = c.recv(); if (m.tag == kTagPing) { on(m); } }\n",
               doc_options()),
      "R14"));
  EXPECT_FALSE(has_rule(
      lint_one("src/parallel/fixture.cpp",
               send_site + "void q(int t) { switch (t) { case kTagPing: on(); break; } }\n",
               doc_options()),
      "R14"));
}

TEST(LintR14, DeserializerWithoutExhaustedCheckFires) {
  const auto findings = lint_one(
      "src/parallel/fixture.cpp",
      "int decode_one(std::span<const std::byte> p) { ByteReader r(p); return r.read<int>(); }\n",
      doc_options());
  EXPECT_TRUE(has_rule(findings, "R14"));
}

TEST(LintR14, ExhaustedCheckOrWireOkQuiets) {
  EXPECT_FALSE(has_rule(lint_one("src/parallel/fixture.cpp",
                                 "int decode_one(std::span<const std::byte> p) {\n"
                                 "  ByteReader r(p);\n"
                                 "  int v = r.read<int>();\n"
                                 "  check_protocol(r.exhausted(), \"trailing bytes\");\n"
                                 "  return v;\n"
                                 "}\n",
                                 doc_options()),
                        "R14"));
  EXPECT_FALSE(has_rule(lint_one("src/parallel/fixture.cpp",
                                 "int decode_one(std::span<const std::byte> p) {\n"
                                 "  // gpumip-lint: wire-ok(framing layer validates length)\n"
                                 "  ByteReader r(p);\n"
                                 "  return r.read<int>();\n"
                                 "}\n",
                                 doc_options()),
                        "R14"));
}

TEST(LintProtocol, FlagDisablesR13AndR14) {
  lint::Options options = doc_options();
  options.protocol_rules = false;
  const auto findings = lint_one(
      "src/parallel/fixture.cpp",
      "void p(Comm& c) { c.send(1, kTagPing, payload); }\n"
      "void encode_item(const Item& it, ByteWriter& w) { w.write<double>(it.a); }\n" +
          std::string(kDecodeItem),
      options);
  EXPECT_FALSE(has_rule(findings, "R13"));
  EXPECT_FALSE(has_rule(findings, "R14"));
}

// ---- R15: replay-determinism hazards ---------------------------------------

TEST(LintR15, WallClockInScopeFires) {
  const std::string code =
      "double now_s() { return std::chrono::steady_clock::now().time_since_epoch().count(); }\n";
  EXPECT_TRUE(has_rule(lint_one("src/lp/fixture.cpp", code, doc_options()), "R15"));
  // bench/ is outside the default determinism scope (src/).
  EXPECT_FALSE(has_rule(lint_one("bench/fixture.cpp", code, doc_options()), "R15"));
}

TEST(LintR15, UnorderedIterationFiresOrderedMapIsQuiet) {
  EXPECT_TRUE(has_rule(lint_one("src/lp/fixture.cpp",
                                "std::unordered_map<int, double> table_;\n"
                                "void dump() { for (const auto& kv : table_) { emit(kv); } }\n",
                                doc_options()),
                       "R15"));
  EXPECT_FALSE(has_rule(lint_one("src/lp/fixture.cpp",
                                 "std::map<int, double> table_;\n"
                                 "void dump() { for (const auto& kv : table_) { emit(kv); } }\n",
                                 doc_options()),
                        "R15"));
}

TEST(LintR15, CustomDeterminismScopeIsHonored) {
  lint::Options options = doc_options();
  options.determinism_scope = {"tools/"};
  const std::string code = "void f() { std::random_device rd; use(rd()); }\n";
  EXPECT_FALSE(has_rule(lint_one("src/lp/fixture.cpp", code, options), "R15"));
  EXPECT_TRUE(has_rule(lint_one("tools/fixture.cpp", code, options), "R15"));
}

TEST(LintR15, DeterminismOkAnnotationWaives) {
  const auto findings = lint_one(
      "src/lp/fixture.cpp",
      "std::unordered_map<int, double> table_;\n"
      "void dump() {\n"
      "  // gpumip-lint: determinism-ok(debug dump, never feeds the solve)\n"
      "  for (const auto& kv : table_) { emit(kv); }\n"
      "}\n",
      doc_options());
  EXPECT_FALSE(has_rule(findings, "R15"));
}

// ---- R16: seed plumbing ----------------------------------------------------

TEST(LintR16, DefaultConstructedEngineFires) {
  EXPECT_TRUE(has_rule(lint_one("src/lp/fixture.cpp",
                                "void f() { std::mt19937_64 gen; use(gen()); }\n", doc_options()),
                       "R16"));
  EXPECT_TRUE(has_rule(lint_one("src/lp/fixture.cpp",
                                "void f() { Rng rng; use(rng.uniform(0.0, 1.0)); }\n",
                                doc_options()),
                       "R16"));
}

TEST(LintR16, SeededEngineAndCtorInitMemberAreQuiet) {
  EXPECT_FALSE(has_rule(
      lint_one("src/lp/fixture.cpp",
               "void f(std::uint64_t seed) { std::mt19937_64 gen(seed); use(gen()); }\n",
               doc_options()),
      "R16"));
  EXPECT_FALSE(has_rule(lint_one("src/lp/fixture.cpp",
                                 "struct S {\n"
                                 "  explicit S(std::uint64_t seed) : engine_(seed) {}\n"
                                 "  std::mt19937_64 engine_;\n"
                                 "};\n",
                                 doc_options()),
                        "R16"));
}

TEST(LintDeterminism, FlagDisablesR15AndR16) {
  lint::Options options = doc_options();
  options.determinism_rules = false;
  const auto findings =
      lint_one("src/lp/fixture.cpp",
               "void f() { std::random_device rd; std::mt19937_64 gen; use(rd(), gen()); }\n",
               options);
  EXPECT_FALSE(has_rule(findings, "R15"));
  EXPECT_FALSE(has_rule(findings, "R16"));
}

// ---- parallel scan (--jobs) -------------------------------------------------

TEST(LintJobs, ParallelScanMatchesSerialFindingsInOrder) {
  // The scan pool merges per-file slots back in input order: findings must
  // be byte-identical to a serial run, whatever the thread interleaving.
  std::vector<lint::SourceFile> files;
  for (int i = 0; i < 12; ++i) {
    const std::string tag = std::to_string(i);
    files.push_back({"src/gen/fixture" + tag + ".cpp",
                     "void f" + tag + "() { std::mt19937_64 gen; use(gen()); }\n"
                     "double t" + tag + "() { return std::chrono::steady_clock::now().time_since_epoch().count(); }\n"});
  }
  std::vector<lint::Suppression> none;

  lint::Options serial = doc_options();
  serial.jobs = 1;
  lint::RunStats serial_stats;
  const auto serial_findings = lint::run_lint(files, serial, none, &serial_stats);

  lint::Options pooled = doc_options();
  pooled.jobs = 4;
  lint::RunStats pooled_stats;
  const auto pooled_findings = lint::run_lint(files, pooled, none, &pooled_stats);

  EXPECT_EQ(serial_stats.scan_jobs, 1u);
  EXPECT_EQ(pooled_stats.scan_jobs, 4u);
  ASSERT_EQ(serial_findings.size(), pooled_findings.size());
  for (std::size_t i = 0; i < serial_findings.size(); ++i) {
    EXPECT_EQ(serial_findings[i].rule, pooled_findings[i].rule) << i;
    EXPECT_EQ(serial_findings[i].file, pooled_findings[i].file) << i;
    EXPECT_EQ(serial_findings[i].line, pooled_findings[i].line) << i;
    EXPECT_EQ(serial_findings[i].message, pooled_findings[i].message) << i;
  }
}

TEST(LintJobs, StatsRecordPhaseTimings) {
  lint::RunStats stats;
  std::vector<lint::Suppression> none;
  (void)lint::run_lint({{"src/fix.cpp", "void f() { g(); }\n"}}, doc_options(), none, &stats);
  // Serial-equivalent scan time is the sum of per-file times, so it can
  // never undercut the pooled wall time.
  EXPECT_GE(stats.scan_serial_ms, 0.0);
  EXPECT_GE(stats.protocol_ms, 0.0);
  EXPECT_GE(stats.determinism_ms, 0.0);
}
