// Householder QR factorization — the third factorization family the paper
// lists (section 4) and the robust fallback for least-squares subproblems
// (e.g. crash bases, degenerate normal equations).
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace gpumip::linalg {

class HouseholderQR {
 public:
  HouseholderQR() = default;

  /// Factors A (m x n, m >= n) as QR; throws NumericalError on rank
  /// deficiency detected via a zero Householder column.
  explicit HouseholderQR(const Matrix& a);

  int rows() const noexcept { return qr_.rows(); }
  int cols() const noexcept { return qr_.cols(); }
  bool valid() const noexcept { return !qr_.empty(); }

  /// Least-squares solve: minimizes ||A x - b||₂; returns x (size n).
  Vector solve(std::span<const double> b) const;

  /// Applies Qᵀ to a vector of length m (in place).
  void apply_qt(std::span<double> v) const;

  /// Reconstructs R (n x n upper triangular).
  Matrix r() const;

 private:
  Matrix qr_;            // Householder vectors below diagonal, R on/above
  std::vector<double> tau_;
};

}  // namespace gpumip::linalg
