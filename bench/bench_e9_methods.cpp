// E9 — solution methods head-to-head (paper sections 2.3 / 4):
//   (a) three-way LP tournament — exterior point (revised simplex) vs
//       interior point (Mehrotra) vs restarted PDHG — cold sequential
//       solves across size and density, priced on the device cost model,
//   (b) entirely-GPU IVM branch-and-bound vs explicit-node CPU DFS on
//       permutation flow-shop (the Gmys et al. comparison),
//   (c) frontier-batched GPU knapsack B&B vs host DFS,
//   (d) the tournament batched: K co-resident relaxations in lockstep
//       waves, where the method-crossover surface gains its third axis
//       (batch occupancy). docs/METHODS.md narrates the committed output.
#include "bench/common.hpp"
#include "ivm/gpu_bnb.hpp"
#include "ivm/knapsack_bnb.hpp"
#include "lp/batched_lp.hpp"
#include "lp/interior_point.hpp"
#include "lp/path_chooser.hpp"
#include "lp/pdhg.hpp"
#include "lp/simplex.hpp"
#include "obs/sampler.hpp"
#include "problems/generators.hpp"
#include "support/strings.hpp"
#include "support/timer.hpp"

namespace {

using namespace gpumip;

const char* short_method(lp::LpMethod m) {
  switch (m) {
    case lp::LpMethod::Simplex: return "spx";
    case lp::LpMethod::InteriorPoint: return "ipm";
    case lp::LpMethod::Pdhg: return "pdhg";
  }
  return "?";
}

void three_way_sequential() {
  bench::title("E9-a", "three-way LP tournament: cold sequential solves");
  bench::row("  %-12s %-9s %-8s %-8s %-8s %-11s %-11s %-11s %-7s %-8s %-6s", "size", "density",
             "spx-it", "ipm-it", "pdhg-it", "spx-sim", "ipm-sim", "pdhg-sim", "winner",
             "chooser", "agree");
  Rng rng(601);
  lp::PdhgOptions popts;
  popts.tol = 1e-6;
  for (int size : {64, 256}) {
    for (double density : {0.02, 0.30}) {
      lp::LpModel model = problems::sparse_lp(size, size * 3 / 2, density, rng);
      const lp::StandardForm form = lp::build_standard_form(model);
      lp::SimplexSolver spx(form);
      lp::LpResult rs = spx.solve_default();
      lp::InteriorPointSolver ipm(form);
      lp::LpResult ri = ipm.solve_default();
      lp::PdhgSolver pdhg(form, popts);
      lp::LpResult rp = pdhg.solve_default();
      auto replay = [&](const lp::LpOpStats& ops) {
        gpu::Device device;
        lp::charge_to_device(device, 0, ops, density < 0.3);
        return device.synchronize();
      };
      const double s_spx = replay(rs.ops), s_ipm = replay(ri.ops), s_pdhg = replay(rp.ops);
      const lp::LpMethod winner = s_spx <= s_ipm && s_spx <= s_pdhg ? lp::LpMethod::Simplex
                                  : s_ipm <= s_pdhg               ? lp::LpMethod::InteriorPoint
                                                                  : lp::LpMethod::Pdhg;
      lp::MethodContext ctx;
      ctx.tol = popts.tol;
      const lp::LpMethod predicted = lp::choose_method(form.a_rows, ctx);
      const bool agree =
          rs.status == lp::LpStatus::Optimal && ri.status == lp::LpStatus::Optimal &&
          rp.status == lp::LpStatus::Optimal &&
          std::abs(rs.objective - ri.objective) < 1e-4 * (1 + std::abs(rs.objective)) &&
          std::abs(rs.objective - rp.objective) < 1e-3 * (1 + std::abs(rs.objective));
      bench::row("  %4dx%-7d %-9.2f %-8ld %-8ld %-8ld %-11s %-11s %-11s %-7s %-8s %-6s", size,
                 size * 3 / 2, density, rs.iterations, ri.iterations, rp.iterations,
                 human_seconds(s_spx).c_str(), human_seconds(s_ipm).c_str(),
                 human_seconds(s_pdhg).c_str(), short_method(winner), short_method(predicted),
                 agree ? "yes" : "NO");
    }
  }
  bench::note("expected shape: one small LP at a time cannot pay PDHG's per-iteration kernel");
  bench::note("launches — simplex takes small instances, IPM (few heavy Cholesky iterations)");
  bench::note("takes large ones. Sequential PDHG never wins a cell; it needs E9-d's batching.");
}

void three_way_batched() {
  bench::title("E9-d", "three-way tournament, batched: K sibling relaxations in lockstep");
  bench::row("  %-12s %-9s %-5s %-8s %-11s %-11s %-11s %-7s %-8s", "size", "density", "K",
             "pdhg-it", "spx-lock", "ipm-seq", "pdhg-lock", "winner", "chooser");
  Rng rng(611);
  lp::PdhgOptions popts;
  popts.tol = 1e-4;  // relaxation-grade: B&B pads bounds by the tol anyway
  struct Cell {
    int size;
    double density;
    int batch;
  };
  for (const Cell& cell : {Cell{96, 0.30, 8}, Cell{96, 0.02, 8}, Cell{96, 0.30, 192},
                           Cell{96, 0.02, 192}}) {
    // A realistic device batch is K sibling node relaxations: the same LP
    // under K different bound tightenings (so per-instance iteration counts
    // cluster and the lockstep tail stays short).
    lp::LpModel base = problems::sparse_lp(cell.size, cell.size * 3 / 2, cell.density, rng);
    const lp::StandardForm base_form = lp::build_standard_form(base);
    std::vector<std::unique_ptr<lp::StandardForm>> storage;
    std::vector<const lp::StandardForm*> views;
    for (int i = 0; i < cell.batch; ++i) {
      auto form = std::make_unique<lp::StandardForm>(base_form);
      const int tighten = 1 + static_cast<int>(rng.index(4));
      for (int t = 0; t < tighten; ++t) {
        const std::size_t j = rng.index(static_cast<std::size_t>(base.num_cols()));
        if (form->ub[j] > form->lb[j]) {
          form->ub[j] = form->lb[j] + 0.8 * (form->ub[j] - form->lb[j]);
        }
      }
      storage.push_back(std::move(form));
      views.push_back(storage.back().get());
    }
    double s_spx = 0, s_ipm = 0, s_pdhg = 0;
    long pdhg_iters = 0;
    {
      gpu::Device device;
      s_spx = lp::solve_batched(views, device, lp::BatchMode::Lockstep).sim_seconds;
    }
    {
      // No batched IPM exists: its contender is the per-instance recipe
      // replayed back-to-back on one stream (each Cholesky already fills
      // the device reasonably well; batching buys IPM the least).
      gpu::Device device;
      for (const lp::StandardForm* form : views) {
        lp::InteriorPointSolver ipm(*form);
        lp::charge_to_device(device, 0, ipm.solve_default().ops, cell.density < 0.3);
      }
      s_ipm = device.synchronize();
    }
    {
      gpu::Device device;
      // The method-crossover time series for EXPERIMENTS.md E9: at the
      // largest sparse cell, sample every registered instrument on this
      // device's simulated clock through the PDHG lockstep (exported when
      // GPUMIP_TIMESERIES_OUT is set; default columns resolve at
      // construction, after earlier cells registered every family). The
      // period scales off the simplex makespan of the same cell so the
      // two backends' curves share a resolution.
      std::unique_ptr<obs::Sampler> sampler;
      std::unique_ptr<obs::Sampler::Bind> bind;
      if (cell.batch == 192 && cell.density < 0.3 && s_spx > 0) {
        obs::SamplerOptions sopts;
        sopts.period = s_spx / 64.0;
        sampler = std::make_unique<obs::Sampler>(sopts);
        bind = std::make_unique<obs::Sampler::Bind>(*sampler);
      }
      lp::BatchedLpReport r = lp::solve_batched_pdhg(views, device, popts);
      if (sampler) {
        bind.reset();
        const std::string path = sampler->export_if_requested();
        if (!path.empty()) {
          bench::row("  time series (K=192 pdhg): %zu rows -> %s", sampler->rows().size(),
                     path.c_str());
        }
      }
      s_pdhg = r.sim_seconds;
      for (const lp::LpResult& res : r.results) {
        pdhg_iters = std::max(pdhg_iters, res.ops.iterations);
      }
    }
    const lp::LpMethod winner = s_spx <= s_ipm && s_spx <= s_pdhg ? lp::LpMethod::Simplex
                                : s_ipm <= s_pdhg               ? lp::LpMethod::InteriorPoint
                                                                : lp::LpMethod::Pdhg;
    lp::MethodContext ctx;
    ctx.batch_size = cell.batch;
    ctx.tol = popts.tol;
    const lp::LpMethod predicted = lp::choose_method(views[0]->a_rows, ctx);
    bench::row("  %4dx%-7d %-9.2f %-5d %-8ld %-11s %-11s %-11s %-7s %-8s", cell.size,
               cell.size * 3 / 2, cell.density, cell.batch, pdhg_iters,
               human_seconds(s_spx).c_str(), human_seconds(s_ipm).c_str(),
               human_seconds(s_pdhg).c_str(), short_method(winner), short_method(predicted));
  }
  bench::note("expected shape: a simplex lockstep wave moves K*m^2 dense bytes, a PDHG wave");
  bench::note("K*nnz sparse bytes; at high occupancy on sparse instances PDHG's cheap waves");
  bench::note("overtake both the dense waves and IPM's serialized Cholesky chain — the");
  bench::note("(density x size x occupancy) crossover cell docs/METHODS.md walks through.");
}

void ivm_comparison() {
  bench::title("E9-b", "flow-shop B&B: CPU explicit nodes vs host IVM vs GPU IVM fleet");
  bench::row("  %-12s %-12s %-10s %-12s %-12s %-10s %-12s", "instance", "engine", "optimum",
             "nodes", "sim-time", "waves", "PCIe-bytes");
  Rng rng(602);
  for (int jobs : {8, 9, 10}) {
    ivm::FlowshopInstance inst = ivm::FlowshopInstance::random(4, jobs, rng);
    const std::string name = "4m x " + std::to_string(jobs) + "j";
    {
      WallTimer t;
      ivm::BnbStats r = ivm::solve_flowshop_cpu(inst);
      // Host cost: bound evaluations at CPU rates.
      const double sim = static_cast<double>(r.nodes_bounded) *
                         (4.0 * inst.machines * inst.jobs / lp::CpuCostModel{}.flops +
                          lp::CpuCostModel{}.per_op_overhead);
      bench::row("  %-12s %-12s %-10.0f %-12ld %-12s %-10s %-12s", name.c_str(), "cpu-dfs",
                 r.best_makespan, r.nodes_bounded, human_seconds(sim).c_str(), "-", "-");
    }
    {
      ivm::BnbStats r = ivm::solve_flowshop_ivm_host(inst);
      const double sim = static_cast<double>(r.nodes_bounded) *
                         (4.0 * inst.machines * inst.jobs / lp::CpuCostModel{}.flops +
                          lp::CpuCostModel{}.per_op_overhead);
      bench::row("  %-12s %-12s %-10.0f %-12ld %-12s %-10s %-12s", name.c_str(), "ivm-host",
                 r.best_makespan, r.nodes_bounded, human_seconds(sim).c_str(), "-", "-");
    }
    for (int fleet : {16, 128}) {
      gpu::Device device;
      ivm::GpuBnbOptions opts;
      opts.num_ivms = fleet;
      ivm::BnbStats r = ivm::solve_flowshop_gpu(inst, device, opts);
      bench::row("  %-12s ivm-gpu-%-4d %-10.0f %-12ld %-12s %-10ld %-12s", name.c_str(), fleet,
                 r.best_makespan, r.nodes_bounded,
                 human_seconds(device.synchronize()).c_str(), r.kernel_waves,
                 human_bytes(device.stats().bytes_h2d + device.stats().bytes_d2h).c_str());
    }
  }
  bench::note("expected shape: all engines agree on the optimum; the GPU fleet explores more");
  bench::note("nodes (weaker pruning order, interval parallelism) but runs them in few");
  bench::note("divergent waves with almost no PCIe traffic — the IVM argument.");
}

void knapsack_comparison() {
  bench::title("E9-c", "knapsack B&B: host DFS vs frontier-batched device engine");
  bench::row("  %-8s %-12s %-12s %-12s %-12s", "items", "optimum", "cpu-nodes", "gpu-nodes",
             "gpu-waves");
  Rng rng(603);
  for (int items : {16, 20, 24}) {
    ivm::KnapsackInstance inst = ivm::KnapsackInstance::random(items, rng);
    ivm::KnapsackResult cpu = ivm::solve_knapsack_cpu(inst);
    gpu::Device device;
    ivm::KnapsackResult gpu_r = ivm::solve_knapsack_gpu(inst, device);
    bench::row("  %-8d %-12.0f %-12ld %-12ld %-12ld%s", items, cpu.best_value, cpu.nodes,
               gpu_r.nodes, gpu_r.kernel_waves,
               cpu.best_value == gpu_r.best_value ? "" : "  MISMATCH");
  }
}

void BM_simplex(benchmark::State& state) {
  Rng rng(604);
  lp::LpModel model = problems::dense_lp(static_cast<int>(state.range(0)),
                                         static_cast<int>(state.range(0)) * 3 / 2, rng);
  const lp::StandardForm form = lp::build_standard_form(model);
  for (auto _ : state) {
    lp::SimplexSolver solver(form);
    lp::LpResult r = solver.solve_default();
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_simplex)->Arg(40)->Arg(80)->Unit(benchmark::kMillisecond);

void BM_ipm(benchmark::State& state) {
  Rng rng(605);
  lp::LpModel model = problems::dense_lp(static_cast<int>(state.range(0)),
                                         static_cast<int>(state.range(0)) * 3 / 2, rng);
  const lp::StandardForm form = lp::build_standard_form(model);
  for (auto _ : state) {
    lp::InteriorPointSolver solver(form);
    lp::LpResult r = solver.solve_default();
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_ipm)->Arg(40)->Arg(80)->Unit(benchmark::kMillisecond);

void BM_pdhg(benchmark::State& state) {
  Rng rng(606);
  lp::LpModel model = problems::sparse_lp(static_cast<int>(state.range(0)),
                                          static_cast<int>(state.range(0)) * 3 / 2, 0.05, rng);
  const lp::StandardForm form = lp::build_standard_form(model);
  for (auto _ : state) {
    lp::PdhgSolver solver(form);
    lp::LpResult r = solver.solve_default();
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_pdhg)->Arg(40)->Arg(80)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  three_way_sequential();
  ivm_comparison();
  knapsack_comparison();
  three_way_batched();
  return gpumip::bench::run_benchmarks(argc, argv);
}
