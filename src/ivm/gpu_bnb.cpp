#include "ivm/gpu_bnb.hpp"

#include <algorithm>
#include <limits>

#include "linalg/device_blas.hpp"

namespace gpumip::ivm {

namespace {

/// Cost of one decode+bound evaluation (flops ~ machines x jobs).
double bound_flops(const FlowshopInstance& inst) {
  return 4.0 * static_cast<double>(inst.machines) * inst.jobs;
}

}  // namespace

BnbStats solve_flowshop_cpu(const FlowshopInstance& instance, bool use_initial_ub) {
  BnbStats stats;
  double best = std::numeric_limits<double>::infinity();
  std::vector<int> best_perm;
  if (use_initial_ub) {
    best_perm = instance.greedy_sequence();
    best = instance.makespan(best_perm);
  }

  // Explicit node objects on a stack: each holds its whole prefix (the
  // linked-list-style representation IVM replaces).
  struct Node {
    std::vector<int> prefix;
    std::vector<bool> used;
  };
  std::vector<Node> stack;
  stack.push_back({{}, std::vector<bool>(static_cast<std::size_t>(instance.jobs), false)});
  while (!stack.empty()) {
    Node node = std::move(stack.back());
    stack.pop_back();
    ++stats.nodes_bounded;
    const double bound = instance.lower_bound(node.prefix);
    if (bound >= best) {
      ++stats.nodes_pruned;
      continue;
    }
    if (static_cast<int>(node.prefix.size()) == instance.jobs) {
      ++stats.leaves_evaluated;
      if (bound < best) {
        best = bound;
        best_perm = node.prefix;
      }
      continue;
    }
    // Children in reverse job order so traversal matches ascending DFS.
    for (int j = instance.jobs - 1; j >= 0; --j) {
      if (node.used[static_cast<std::size_t>(j)]) continue;
      Node child = node;
      child.prefix.push_back(j);
      child.used[static_cast<std::size_t>(j)] = true;
      stack.push_back(std::move(child));
    }
  }
  stats.best_makespan = best;
  stats.best_permutation = std::move(best_perm);
  return stats;
}

namespace {

/// Shared IVM traversal step: bounds the current prefix, descends or
/// advances, updates the incumbent. Returns the number of nodes bounded.
template <typename OnLeaf>
long ivm_step(Ivm& ivm, const FlowshopInstance& inst, double& best, OnLeaf&& on_leaf,
              BnbStats& stats) {
  if (ivm.exhausted()) return 0;
  const std::vector<int> prefix = ivm.prefix();
  const double bound = inst.lower_bound(prefix);
  ++stats.nodes_bounded;
  if (ivm.at_leaf()) {
    ++stats.leaves_evaluated;
    if (bound < best) {
      best = bound;
      on_leaf(prefix);
    }
    ivm.advance();
  } else if (bound >= best) {
    ++stats.nodes_pruned;
    ivm.advance();
  } else {
    ivm.descend();
  }
  return 1;
}

}  // namespace

BnbStats solve_flowshop_ivm_host(const FlowshopInstance& instance, bool use_initial_ub) {
  BnbStats stats;
  double best = std::numeric_limits<double>::infinity();
  std::vector<int> best_perm;
  if (use_initial_ub) {
    best_perm = instance.greedy_sequence();
    best = instance.makespan(best_perm);
  }
  Ivm ivm(instance.jobs, 0, Factoradic::factorial(instance.jobs));
  while (!ivm.exhausted()) {
    ivm_step(ivm, instance, best, [&](const std::vector<int>& perm) { best_perm = perm; },
             stats);
  }
  stats.best_makespan = best;
  stats.best_permutation = std::move(best_perm);
  return stats;
}

BnbStats solve_flowshop_gpu(const FlowshopInstance& instance, gpu::Device& device,
                            const GpuBnbOptions& options) {
  check_arg(options.num_ivms > 0, "gpu bnb: need at least one IVM");
  BnbStats stats;
  const int n = instance.jobs;

  // Device residency: the instance matrix, the IVM fleet (position + end
  // vectors as integers), and an incumbent cell. Capacity is accounted; the
  // point of S1 is that NOTHING else crosses the PCIe bus during search.
  gpu::DeviceBuffer d_instance =
      device.alloc(instance.processing.size() * sizeof(double), "fs.instance");
  device.copy_h2d(0, d_instance, instance.processing.data(),
                  instance.processing.size() * sizeof(double));
  gpu::DeviceBuffer d_ivms = device.alloc(
      static_cast<std::size_t>(options.num_ivms) * (static_cast<std::size_t>(n) + 2) *
          sizeof(std::uint64_t),
      "fs.ivms");
  gpu::DeviceBuffer d_best = device.alloc(sizeof(double) + static_cast<std::size_t>(n) * sizeof(int),
                                          "fs.best");

  double best = std::numeric_limits<double>::infinity();
  std::vector<int> best_perm;
  if (options.use_initial_ub) {
    best_perm = instance.greedy_sequence();
    best = instance.makespan(best_perm);
  }

  // The fleet: initial static partition of [0, n!) into num_ivms intervals.
  const std::uint64_t total = Factoradic::factorial(n);
  std::vector<Ivm> fleet;
  const std::uint64_t chunk = std::max<std::uint64_t>(1, total / static_cast<std::uint64_t>(options.num_ivms));
  for (int i = 0; i < options.num_ivms; ++i) {
    const std::uint64_t begin = std::min<std::uint64_t>(total, chunk * static_cast<std::uint64_t>(i));
    const std::uint64_t end =
        i + 1 == options.num_ivms ? total : std::min<std::uint64_t>(total, chunk * (static_cast<std::uint64_t>(i) + 1));
    if (begin < end) fleet.emplace_back(n, begin, end);
  }

  long waves = 0;
  while (waves < options.max_waves) {
    ++waves;
    // --- one kernel wave: decode + bound + branch for every active IVM ---
    int active = 0;
    for (Ivm& ivm : fleet) {
      if (!ivm.exhausted()) ++active;
    }
    if (active == 0) break;
    gpu::KernelCost cost;
    cost.flops = bound_flops(instance) * active;
    cost.bytes = static_cast<double>(active) * (n + 2) * sizeof(std::uint64_t) * 2 +
                 static_cast<double>(instance.processing.size()) * sizeof(double);
    // Divergence: IVMs at different depths / prune decisions diverge within
    // a warp — the central SIMD concern of section 3 strategy 1.
    cost.divergence = 0.5;
    cost.occupancy = linalg::occupancy_for_elements(
        static_cast<std::size_t>(active) * static_cast<std::size_t>(n) * 32);
    device.launch(0, cost, [&] {
      for (Ivm& ivm : fleet) {
        ivm_step(ivm, instance, best,
                 [&](const std::vector<int>& perm) { best_perm = perm; }, stats);
      }
    });
    // --- on-device work stealing for idle IVMs ---
    for (Ivm& ivm : fleet) {
      if (!ivm.exhausted()) continue;
      // Victim: the IVM with the largest remaining interval.
      Ivm* victim = nullptr;
      std::uint64_t largest = 1;
      for (Ivm& other : fleet) {
        if (!other.exhausted() && other.remaining() > largest) {
          largest = other.remaining();
          victim = &other;
        }
      }
      if (victim == nullptr) continue;
      gpu::KernelCost steal_cost;
      steal_cost.flops = 64;
      steal_cost.bytes = 2.0 * (n + 2) * sizeof(std::uint64_t);
      steal_cost.occupancy = 1.0 / 1024.0;
      device.launch(0, steal_cost, [&] {
        ivm = victim->split();
        ++stats.steals;
      });
    }
  }
  stats.kernel_waves = waves;

  // Final download: incumbent value + permutation (one small D2H).
  std::vector<std::byte> result_host(d_best.size_bytes());
  device.copy_d2h(0, d_best, result_host.data(), result_host.size());
  device.synchronize();

  stats.best_makespan = best;
  stats.best_permutation = std::move(best_perm);
  return stats;
}

}  // namespace gpumip::ivm
