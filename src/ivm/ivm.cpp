#include "ivm/ivm.hpp"

#include <algorithm>

namespace gpumip::ivm {

std::uint64_t Factoradic::factorial(int n) {
  check_arg(n >= 0 && n <= 20, "factorial: n out of range [0,20]");
  std::uint64_t f = 1;
  for (int i = 2; i <= n; ++i) f *= static_cast<std::uint64_t>(i);
  return f;
}

std::uint64_t Factoradic::rank(const std::vector<int>& digits, int n) {
  check_arg(static_cast<int>(digits.size()) == n, "rank: digit count mismatch");
  std::uint64_t r = 0;
  for (int d = 0; d < n; ++d) {
    check_arg(digits[static_cast<std::size_t>(d)] >= 0 &&
                  digits[static_cast<std::size_t>(d)] < n - d,
              "rank: digit out of range");
    r += static_cast<std::uint64_t>(digits[static_cast<std::size_t>(d)]) * factorial(n - 1 - d);
  }
  return r;
}

std::vector<int> Factoradic::digits(std::uint64_t rank, int n) {
  check_arg(rank <= factorial(n), "digits: rank out of range");
  std::vector<int> out(static_cast<std::size_t>(n), 0);
  for (int d = 0; d < n; ++d) {
    const std::uint64_t f = factorial(n - 1 - d);
    out[static_cast<std::size_t>(d)] = static_cast<int>(rank / f);
    rank %= f;
  }
  return out;
}

Ivm::Ivm(int n, std::uint64_t begin_rank, std::uint64_t end_rank)
    : n_(n), depth_(0), end_rank_(end_rank), exhausted_(begin_rank >= end_rank) {
  check_arg(n >= 1 && n <= 20, "Ivm: n out of range [1,20]");
  check_arg(end_rank <= Factoradic::factorial(n), "Ivm: end rank too large");
  pos_ = Factoradic::digits(begin_rank, n);
  // Start at depth 0 of the subtree the begin rank points into: keep only
  // the first digit as the explored prefix; deeper digits stay (they define
  // the interval start, and descend() walks onto them).
  depth_ = 0;
}

std::vector<int> Ivm::prefix() const {
  check_arg(!exhausted_, "prefix on exhausted IVM");
  // Decode the Lehmer digits into actual job ids.
  std::vector<int> available(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) available[static_cast<std::size_t>(i)] = i;
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(depth_) + 1);
  for (int d = 0; d <= depth_; ++d) {
    const int idx = pos_[static_cast<std::size_t>(d)];
    out.push_back(available[static_cast<std::size_t>(idx)]);
    available.erase(available.begin() + idx);
  }
  return out;
}

std::uint64_t Ivm::position_rank() const {
  std::uint64_t r = 0;
  for (int d = 0; d < n_; ++d) {
    // Digits beyond the current depth are part of the cursor only down to
    // depth_; deeper ones are implicitly 0 after an advance, but may hold
    // the initial interval offset before the first descent past them.
    r += static_cast<std::uint64_t>(pos_[static_cast<std::size_t>(d)]) *
         Factoradic::factorial(n_ - 1 - d);
  }
  return r;
}

std::uint64_t Ivm::remaining() const {
  if (exhausted_) return 0;
  const std::uint64_t p = position_rank();
  return end_rank_ > p ? end_rank_ - p : 0;
}

void Ivm::descend() {
  check_arg(!exhausted_ && !at_leaf(), "descend: cannot");
  ++depth_;
  // pos_[depth_] already holds either 0 or the interval-start digit.
}

void Ivm::advance() {
  check_arg(!exhausted_, "advance on exhausted IVM");
  // Zero all digits deeper than the current depth, then increment with
  // carry at the current depth.
  for (int d = depth_ + 1; d < n_; ++d) pos_[static_cast<std::size_t>(d)] = 0;
  while (depth_ >= 0) {
    ++pos_[static_cast<std::size_t>(depth_)];
    if (pos_[static_cast<std::size_t>(depth_)] < n_ - depth_) break;
    pos_[static_cast<std::size_t>(depth_)] = 0;
    --depth_;
  }
  if (depth_ < 0) {
    exhausted_ = true;
    depth_ = 0;
    return;
  }
  check_exhausted();
}

void Ivm::check_exhausted() {
  if (position_rank() >= end_rank_) {
    exhausted_ = true;
  }
}

Ivm Ivm::split() {
  check_arg(!exhausted_, "split on exhausted IVM");
  const std::uint64_t p = position_rank();
  check_arg(end_rank_ - p >= 2, "split: interval too small");
  const std::uint64_t mid = p + (end_rank_ - p) / 2;
  Ivm thief(n_, mid, end_rank_);
  end_rank_ = mid;
  check_exhausted();
  return thief;
}

}  // namespace gpumip::ivm
