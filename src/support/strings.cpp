#include "support/strings.hpp"

#include <cctype>
#include <cstdio>
#include <sstream>

namespace gpumip {

std::string human_bytes(std::uint64_t bytes) {
  static const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[48];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, units[unit]);
  }
  return buf;
}

std::string human_seconds(double seconds) {
  char buf[48];
  if (seconds < 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.1f ns", seconds * 1e9);
  } else if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  }
  return buf;
}

std::string join(const std::vector<std::string>& items, const std::string& sep) {
  std::ostringstream out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out << sep;
    out << items[i];
  }
  return out.str();
}

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

std::string trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(begin, end - begin);
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::string to_upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

}  // namespace gpumip
