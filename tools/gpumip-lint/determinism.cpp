#include "determinism.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace gpumip::lint {
namespace {

constexpr std::size_t npos = std::string::npos;

bool in_scope(const std::string& path, const Options& options) {
  for (const std::string& prefix : options.determinism_scope) {
    if (path.compare(0, prefix.size(), prefix) == 0) return true;
    if (path.find("/" + prefix) != npos) return true;
  }
  return false;
}

void report(const Scanned& f, std::size_t at, const std::string& rule,
            const std::string& message, std::vector<Finding>& findings) {
  const int line = line_of(f, at);
  if (has_annotation(f, line, "determinism-ok")) return;
  findings.push_back({f.src->path, line, rule, message});
}

// ---- R15: replay determinism -----------------------------------------------

void check_clocks_and_randomness(const Scanned& f, std::vector<Finding>& findings) {
  for (const char* clock : {"system_clock", "steady_clock", "high_resolution_clock"}) {
    for (std::size_t at : word_positions(f, clock)) {
      report(f, at, "R15",
             std::string("wall-clock source '") + clock +
                 "' in replay-relevant code: schedule replay must be bit-identical, so the "
                 "solve path may not read host clocks — derive time from the schedule lane "
                 "or keep the reading out of solver decisions and annotate "
                 "'// gpumip-lint: determinism-ok(reason)'",
             findings);
    }
  }
  for (std::size_t at : word_positions(f, "random_device")) {
    report(f, at, "R15",
           "'random_device' is entropy the replay harness cannot capture; every random "
           "draw must come from a seeded engine (GPUMIP_SCHEDULE_SEED/options) so a run "
           "is reproducible from its seed (or annotate "
           "'// gpumip-lint: determinism-ok(reason)'",
           findings);
  }
  for (const char* fn : {"rand", "srand"}) {
    for (std::size_t at : word_positions(f, fn)) {
      const std::string& s = f.clean;
      if (at > 0 && (s[at - 1] == '.' || (s[at - 1] == '>' && at >= 2 && s[at - 2] == '-'))) {
        continue;  // member named rand on some other object
      }
      std::size_t pos = skip_ws(s, at + std::string(fn).size());
      if (pos >= s.size() || s[pos] != '(') continue;  // not a call
      report(f, at, "R15",
             std::string("'") + fn +
                 "' uses hidden global RNG state the replay harness cannot capture; draw "
                 "from a seeded engine (support/rng.hpp) instead (or annotate "
                 "'// gpumip-lint: determinism-ok(reason)'",
             findings);
    }
  }
}

/// One declared unordered container the iteration pass tracks.
struct UnorderedDecl {
  std::string file;
  int line = 0;
};

/// Collects `unordered_map<...> name` / `unordered_set<...> name` declared
/// variable names across the in-scope files. Name-based and global, like
/// the call graph: a member declared in a header is iterated in its .cpp.
std::map<std::string, UnorderedDecl> collect_unordered_names(
    const std::vector<Scanned>& files, const Options& options) {
  std::map<std::string, UnorderedDecl> tracked;
  for (const Scanned& f : files) {
    if (!in_scope(f.src->path, options)) continue;
    const std::string& s = f.clean;
    for (const char* container :
         {"unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"}) {
      for (std::size_t at : word_positions(f, container)) {
        std::size_t pos = skip_ws(s, at + std::string(container).size());
        if (pos >= s.size() || s[pos] != '<') continue;
        int depth = 0;
        while (pos < s.size()) {
          if (s[pos] == '<') ++depth;
          if (s[pos] == '>' && --depth == 0) break;
          ++pos;
        }
        if (pos >= s.size()) continue;
        pos = skip_ws(s, pos + 1);
        std::string name;
        while (pos < s.size() && is_ident_char(s[pos])) name += s[pos++];
        if (name.empty()) continue;
        tracked[name] = {f.src->path, line_of(f, at)};
      }
    }
  }
  return tracked;
}

/// Flags range-for loops whose container expression trails in a tracked
/// unordered name (`for (auto& kv : ledger_)`).
void check_unordered_iteration(const Scanned& f,
                               const std::map<std::string, UnorderedDecl>& tracked,
                               std::vector<Finding>& findings) {
  const std::string& s = f.clean;
  for (std::size_t at : word_positions(f, "for")) {
    std::size_t pos = skip_ws(s, at + 3);
    if (pos >= s.size() || s[pos] != '(') continue;
    int depth = 0;
    std::size_t close = pos;
    while (close < s.size()) {
      if (s[close] == '(') ++depth;
      if (s[close] == ')' && --depth == 0) break;
      ++close;
    }
    if (close >= s.size()) continue;
    // Range-based for: a depth-1 ':' that is not part of '::'.
    std::size_t colon = npos;
    depth = 0;
    for (std::size_t i = pos; i < close; ++i) {
      if (s[i] == '(' || s[i] == '[' || s[i] == '{' || s[i] == '<') ++depth;
      if (s[i] == ')' || s[i] == ']' || s[i] == '}' || s[i] == '>') --depth;
      if (s[i] == ':' && depth == 1) {
        if ((i > 0 && s[i - 1] == ':') || (i + 1 < close && s[i + 1] == ':')) continue;
        colon = i;
        break;
      }
    }
    if (colon == npos) continue;
    std::string range = s.substr(colon + 1, close - colon - 1);
    std::size_t end = range.size();
    while (end > 0 && is_space(range[end - 1])) --end;
    std::size_t begin = end;
    while (begin > 0 && is_ident_char(range[begin - 1])) --begin;
    if (begin == end) continue;
    const std::string name = range.substr(begin, end - begin);
    auto decl = tracked.find(name);
    if (decl == tracked.end()) continue;
    report(f, at, "R15",
           "iteration over unordered container '" + name + "' (declared at " +
               decl->second.file + ":" + std::to_string(decl->second.line) +
               "): bucket order varies across standard-library versions and runs, so "
               "everything derived from the walk (reports, traces, decisions) is "
               "nondeterministic; use std::map/std::set or sort before iterating (or "
               "annotate '// gpumip-lint: determinism-ok(reason)'",
           findings);
  }
}

// ---- R16: seed plumbing ----------------------------------------------------

const std::set<std::string>& engine_names() {
  static const std::set<std::string> k = {
      "mt19937",       "mt19937_64",    "minstd_rand", "minstd_rand0",
      "ranlux24_base", "ranlux48_base", "knuth_b",     "default_random_engine",
      "Rng",
  };
  return k;
}

void check_seed_plumbing(const Scanned& f, std::vector<Finding>& findings) {
  const std::string& s = f.clean;
  for (const std::string& engine : engine_names()) {
    for (std::size_t at : word_positions(f, engine)) {
      // Type-position and declaration-of-the-engine uses are not
      // constructions.
      std::size_t q = at;
      while (q > 0 && is_space(s[q - 1])) --q;
      if (q > 0 && s[q - 1] == '~') continue;  // destructor
      if (q > 0 && is_ident_char(s[q - 1])) {
        std::size_t r0 = q;
        while (r0 > 0 && is_ident_char(s[r0 - 1])) --r0;
        const std::string prev = s.substr(r0, q - r0);
        if (prev == "class" || prev == "struct" || prev == "explicit" ||
            prev == "typename" || prev == "using" || prev == "enum") {
          continue;
        }
      }
      std::size_t pos = skip_ws(s, at + engine.size());
      if (pos >= s.size()) continue;
      const auto fire = [&]() {
        report(f, at, "R16",
               "RNG engine '" + engine +
                   "' is default-constructed: its seed is whatever the implementation "
                   "picks, invisible to the replay harness; construct every engine from "
                   "an explicit seed traceable to GPUMIP_SCHEDULE_SEED/options (or "
                   "annotate '// gpumip-lint: determinism-ok(reason)'",
               findings);
      };
      if (is_ident_char(s[pos])) {
        // `Engine name ...`: a variable declaration.
        std::string name;
        while (pos < s.size() && is_ident_char(s[pos])) name += s[pos++];
        pos = skip_ws(s, pos);
        if (pos >= s.size()) continue;
        if (s[pos] == ';') {
          // `Engine member_;` seeded in a ctor-init list elsewhere in the
          // file is fine; a plain `Engine local;` is not.
          if (!name.empty() && name.back() == '_' && f.clean.find(name + "(") != npos) {
            continue;
          }
          fire();
        } else if (s[pos] == '(') {
          if (skip_ws(s, pos + 1) < s.size() && s[skip_ws(s, pos + 1)] == ')') fire();
        } else if (s[pos] == '{') {
          if (skip_ws(s, pos + 1) < s.size() && s[skip_ws(s, pos + 1)] == '}') fire();
        }
        // `= expr`, `,`, `)` (parameters) stay quiet: the initializer or
        // caller supplies the seeded engine.
      } else if (s[pos] == '(') {
        // `Engine(...)` temporary (or an unindexed ctor declaration):
        // empty parens mean a default-constructed engine.
        if (skip_ws(s, pos + 1) < s.size() && s[skip_ws(s, pos + 1)] == ')') fire();
      } else if (s[pos] == '{') {
        if (skip_ws(s, pos + 1) < s.size() && s[skip_ws(s, pos + 1)] == '}') fire();
      }
    }
  }
}

}  // namespace

void check_determinism(const std::vector<Scanned>& files, const Options& options,
                       std::vector<Finding>& findings) {
  const std::map<std::string, UnorderedDecl> tracked = collect_unordered_names(files, options);
  for (const Scanned& f : files) {
    if (!in_scope(f.src->path, options)) continue;
    check_clocks_and_randomness(f, findings);
    check_unordered_iteration(f, tracked, findings);
    check_seed_plumbing(f, findings);
  }
}

}  // namespace gpumip::lint
