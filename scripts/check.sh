#!/usr/bin/env bash
# Full correctness sweep for the invariant-checking toolchain (DESIGN.md,
# "Checked builds & invariants"). Runs three independent gates and exits
# nonzero if any of them finds a problem:
#
#   1. sanitize   — ASan+UBSan build (-DGPUMIP_SANITIZE=ON) + full ctest.
#   2. checked    — GPUMIP_CHECKED build (invariant validators live) + ctest.
#   3. tidy       — clang-tidy over src/ with the repo .clang-tidy, using the
#                   compile database of the sanitize build. Skipped with a
#                   warning when clang-tidy is not installed (the check still
#                   exits 0 for this step: it is an extra gate, not a
#                   replacement for the other two).
#
# Both build gates compile with -Werror (GPUMIP_WERROR=ON), so warnings
# promoted in the top-level CMakeLists (-Wall -Wextra -Wpedantic -Wshadow)
# are hard failures here even though normal developer builds only warn.
#
# Usage: scripts/check.sh [jobs]     (default: nproc)
set -u -o pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"
FAILURES=0

run_gate() {
  local name="$1" build_dir="$2"
  shift 2
  echo "==> [$name] configure ($build_dir)"
  if ! cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
       -DGPUMIP_WERROR=ON "$@" >"$build_dir.configure.log" 2>&1; then
    echo "==> [$name] CONFIGURE FAILED (see $build_dir.configure.log)"
    FAILURES=$((FAILURES + 1))
    return
  fi
  echo "==> [$name] build"
  if ! cmake --build "$build_dir" -j "$JOBS" >"$build_dir.build.log" 2>&1; then
    echo "==> [$name] BUILD FAILED (see $build_dir.build.log)"
    tail -n 30 "$build_dir.build.log"
    FAILURES=$((FAILURES + 1))
    return
  fi
  echo "==> [$name] ctest"
  if ! (cd "$build_dir" && ctest --output-on-failure -j "$JOBS"); then
    echo "==> [$name] TESTS FAILED"
    FAILURES=$((FAILURES + 1))
    return
  fi
  echo "==> [$name] OK"
}

# Gate 1: sanitizers. detect_leaks needs ptrace; fall back gracefully where
# the environment forbids it (containers without CAP_SYS_PTRACE).
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"
run_gate sanitize build-asan -DGPUMIP_SANITIZE=ON

# Gate 2: checked mode — every GPUMIP_ASSERT / GPUMIP_VALIDATE call site in
# the solver runs live (tree, snapshot, basis residual, sparse structure,
# device ledger, message audit).
run_gate checked build-checked -DGPUMIP_CHECKED=ON

# Gate 3: clang-tidy (optional tool; the compile database comes from the
# sanitize build, which exports compile_commands.json).
if command -v clang-tidy >/dev/null 2>&1; then
  echo "==> [tidy] clang-tidy over src/"
  mapfile -t sources < <(find src -name '*.cpp' | sort)
  if ! clang-tidy -p build-asan --quiet "${sources[@]}"; then
    echo "==> [tidy] LINT FINDINGS"
    FAILURES=$((FAILURES + 1))
  else
    echo "==> [tidy] OK"
  fi
else
  echo "==> [tidy] SKIPPED: clang-tidy not installed (install LLVM tools to enable this gate)"
fi

echo
if [ "$FAILURES" -ne 0 ]; then
  echo "check.sh: $FAILURES gate(s) failed"
  exit 1
fi
echo "check.sh: all gates passed"
