#include <gtest/gtest.h>

#include <cmath>

#include "mip/solver.hpp"
#include "problems/generators.hpp"
#include "problems/mps.hpp"

namespace gpumip::problems {
namespace {

TEST(Generators, KnapsackShape) {
  Rng rng(1);
  mip::MipModel m = knapsack(20, rng);
  EXPECT_EQ(m.num_cols(), 20);
  EXPECT_EQ(m.num_rows(), 1);
  EXPECT_EQ(m.num_integer(), 20);
  EXPECT_EQ(m.lp().sense(), lp::Sense::Maximize);
  m.validate();
}

TEST(Generators, SetCoverEveryElementCoverable) {
  Rng rng(2);
  mip::MipModel m = set_cover(30, 12, rng);
  // All-ones is feasible by construction.
  linalg::Vector ones(12, 1.0);
  EXPECT_TRUE(m.is_feasible(ones));
}

TEST(Generators, GapRowStructure) {
  Rng rng(3);
  mip::MipModel m = generalized_assignment(3, 5, rng);
  EXPECT_EQ(m.num_cols(), 15);
  EXPECT_EQ(m.num_rows(), 5 + 3);  // one equality per job + one capacity per agent
}

TEST(Generators, UnitCommitmentFeasible) {
  Rng rng(4);
  mip::MipModel m = unit_commitment(3, 3, rng);
  // All generators committed at full output is feasible.
  linalg::Vector x(static_cast<std::size_t>(m.num_cols()), 0.0);
  for (int j = 0; j < m.num_cols(); ++j) {
    const auto& col = m.lp().col(j);
    x[static_cast<std::size_t>(j)] = m.is_integer(j) ? 1.0 : col.ub;
  }
  EXPECT_TRUE(m.is_feasible(x));
}

TEST(Generators, RandomMipZeroFeasible) {
  Rng rng(5);
  RandomMipConfig cfg;
  mip::MipModel m = random_mip(cfg, rng);
  linalg::Vector zeros(static_cast<std::size_t>(m.num_cols()), 0.0);
  EXPECT_TRUE(m.is_feasible(zeros));
}

TEST(Generators, LpDensityControl) {
  Rng rng(6);
  lp::LpModel dense = dense_lp(20, 30, rng);
  lp::LpModel sparse10 = sparse_lp(40, 60, 0.1, rng);
  EXPECT_GT(dense.density(), 0.99);
  EXPECT_LT(sparse10.density(), 0.2);
  EXPECT_GT(sparse10.density(), 0.02);
}

TEST(Mps, WriteReadRoundTripPreservesOptimum) {
  Rng rng(7);
  RandomMipConfig cfg;
  cfg.rows = 6;
  cfg.cols = 7;
  cfg.bound = 3.0;
  mip::MipModel original = random_mip(cfg, rng);
  const std::string text = write_mps_string(original);
  mip::MipModel parsed = read_mps_string(text);
  EXPECT_EQ(parsed.num_cols(), original.num_cols());
  EXPECT_EQ(parsed.num_rows(), original.num_rows());
  EXPECT_EQ(parsed.num_integer(), original.num_integer());
  mip::MipResult r1 = mip::BnbSolver(original, {}).solve();
  mip::MipResult r2 = mip::BnbSolver(parsed, {}).solve();
  ASSERT_EQ(r1.status, mip::MipStatus::Optimal);
  ASSERT_EQ(r2.status, mip::MipStatus::Optimal);
  EXPECT_NEAR(r1.objective, r2.objective, 1e-6);
}

TEST(Mps, ParsesHandWrittenFile) {
  const std::string text = R"(* comment line
NAME TEST1
ROWS
 N COST
 L LIM1
 G LIM2
 E EQ1
COLUMNS
 X COST 1.0 LIM1 2.0
 X LIM2 1.0
 MK1 'MARKER' 'INTORG'
 Y COST -3.0 LIM1 1.0
 Y EQ1 1.0
 MK2 'MARKER' 'INTEND'
RHS
 RHS1 LIM1 10.0 LIM2 1.0
 RHS1 EQ1 2.0
BOUNDS
 UP BND1 X 8.0
 UI BND1 Y 5
ENDATA
)";
  mip::MipModel m = read_mps_string(text);
  EXPECT_EQ(m.num_cols(), 2);
  EXPECT_EQ(m.num_rows(), 3);
  EXPECT_FALSE(m.is_integer(0));
  EXPECT_TRUE(m.is_integer(1));
  EXPECT_DOUBLE_EQ(m.lp().col(0).ub, 8.0);
  EXPECT_DOUBLE_EQ(m.lp().col(1).ub, 5.0);
  EXPECT_DOUBLE_EQ(m.lp().col(0).obj, 1.0);
  EXPECT_DOUBLE_EQ(m.lp().col(1).obj, -3.0);
  EXPECT_DOUBLE_EQ(m.lp().row(0).ub, 10.0);
  EXPECT_DOUBLE_EQ(m.lp().row(1).lb, 1.0);
  EXPECT_DOUBLE_EQ(m.lp().row(2).lb, 2.0);
  EXPECT_DOUBLE_EQ(m.lp().row(2).ub, 2.0);
}

TEST(Mps, RangesSection) {
  const std::string text = R"(NAME R
ROWS
 N COST
 L ROW1
COLUMNS
 X COST 1.0 ROW1 1.0
RHS
 RHS1 ROW1 10.0
RANGES
 RNG1 ROW1 4.0
ENDATA
)";
  mip::MipModel m = read_mps_string(text);
  EXPECT_DOUBLE_EQ(m.lp().row(0).ub, 10.0);
  EXPECT_DOUBLE_EQ(m.lp().row(0).lb, 6.0);
}

TEST(Mps, MalformedInputsThrow) {
  EXPECT_THROW(read_mps_string(""), Error);                      // no ENDATA
  EXPECT_THROW(read_mps_string("JUNKSECTION\nENDATA\n"), Error); // bad section
  EXPECT_THROW(read_mps_string("ROWS\n Z BAD\nENDATA\n"), Error);
  EXPECT_THROW(read_mps_string("COLUMNS\n X NOROW 1.0\nENDATA\n"), Error);
  EXPECT_THROW(read_mps_file("/nonexistent/path.mps"), Error);
}

TEST(Mps, ObjsenseMaximize) {
  const std::string text = R"(NAME S
OBJSENSE
 MAX
ROWS
 N COST
 L R1
COLUMNS
 X COST 2.0 R1 1.0
RHS
 RHS1 R1 3.0
ENDATA
)";
  mip::MipModel m = read_mps_string(text);
  EXPECT_EQ(m.lp().sense(), lp::Sense::Maximize);
}

}  // namespace
}  // namespace gpumip::problems
