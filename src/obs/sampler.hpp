// Sim-clock time-series sampler over the obs metrics registry.
//
// A Sampler turns the registry's end-of-run totals into a time series:
// each tick that crosses a period boundary appends one row of per-column
// *deltas* since the previous row, so benches can show occupancy ramp-up,
// tree growth, and wave-size curves over time instead of a single total.
//
// Clock domains. Ticks driven by a simulated clock (`tick_sim` with a
// simmpi rank clock or a gpu::Device stream clock) stamp rows with sim
// time; because both the tick times and the sampled instruments derive
// from the deterministic simulation, sim-stamped rows are bit-identical
// under schedule replay — provided the sampled instruments are mutated
// only by the sampling thread's deterministic path (the ownership
// contract; see docs/METRICS.md "Time series"). Threads not bound to a
// simulated clock use `tick_wall`, whose rows are wall-stamped and
// explicitly not replay-stable.
//
// Threading. A Sampler is owned by one sampling thread at a time: ticks
// and export are not internally synchronized (registry reads are relaxed
// atomics, so concurrent *recording* elsewhere is always safe). The
// thread-local `Bind` guard routes `GPUMIP_OBS_SAMPLE_TICK` hook sites in
// the solver to the bound sampler and costs nothing when none is bound.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace gpumip::obs {

struct SamplerOptions {
  /// Seconds (sim or wall, per tick domain) between rows. Ticks arriving
  /// faster than this are coalesced; a tick that crosses several
  /// boundaries at once emits one row stamped at the last boundary.
  double period = 1e-3;
  /// Explicit flattened instrument names to sample. Empty: every
  /// registered counter, gauge, and histogram whose name starts with
  /// "gpumip." at construction time becomes a column.
  std::vector<std::string> columns;
  /// Rows beyond this are dropped (and counted in dropped()) so a
  /// misconfigured period cannot grow without bound.
  std::size_t max_samples = 65536;
};

/// What a column samples. Counters sample the delta of their value,
/// gauges their current level, histograms the delta of count and sum as
/// two columns (so per-interval means are recoverable).
enum class ColumnKind { Counter, Gauge, HistCount, HistSum };

struct SamplerColumn {
  std::string name;  ///< flattened instrument name (labels included)
  ColumnKind kind = ColumnKind::Counter;
};

struct SampleRow {
  double ts = 0.0;      ///< sim seconds, or wall seconds since first wall tick
  bool sim_time = true;
  std::vector<double> values;  ///< one entry per column (delta or level)
};

class Sampler {
 public:
  explicit Sampler(SamplerOptions options = {});

  /// Appends a row if `sim_now` crossed a period boundary since the last
  /// row (coalescing multiple crossed boundaries into one row).
  void tick_sim(double sim_now);
  /// Wall-clock variant for threads with no simulated clock.
  void tick_wall();
  /// Unconditional sample (used by the ticks and by tests).
  void sample_now(double ts, bool sim_time);

  const std::vector<SamplerColumn>& columns() const noexcept { return columns_; }
  const std::vector<SampleRow>& rows() const noexcept { return rows_; }
  std::uint64_t dropped() const noexcept { return dropped_; }
  double period() const noexcept { return options_.period; }

  /// The series as a JSON document (schema gpumip.timeseries.v1; layout
  /// in docs/METRICS.md).
  std::string to_json() const;
  /// Writes to_json() to `path`; throws Error(kIoError) on failure.
  void export_json(const std::string& path) const;
  /// Exports to the path named by GPUMIP_TIMESERIES_OUT, if set. Returns
  /// the path written to ("" when unset).
  std::string export_if_requested() const;

  /// Thread-local RAII binding: while alive, GPUMIP_OBS_SAMPLE_TICK hook
  /// sites on this thread forward to the sampler. Nestable (restores the
  /// previous binding on destruction).
  class Bind {
   public:
    explicit Bind(Sampler& sampler) noexcept;
    ~Bind();
    Bind(const Bind&) = delete;
    Bind& operator=(const Bind&) = delete;

   private:
    Sampler* previous_;
  };

  /// The sampler bound to this thread, if any.
  static Sampler* bound() noexcept;
  /// Forwards to bound()->tick_sim(sim_now); no-op when nothing is bound.
  static void tick_bound(double sim_now);

 private:
  void snapshot_baseline();
  double read_column(std::size_t i) const;

  SamplerOptions options_;
  std::vector<SamplerColumn> columns_;
  std::vector<double> baseline_;  ///< instrument values at the last row
  std::vector<SampleRow> rows_;
  std::uint64_t dropped_ = 0;
  double next_due_ = 0.0;   ///< first uncrossed sim boundary
  bool sim_started_ = false;
  double wall_epoch_ = 0.0;
  double wall_last_ = 0.0;
  bool wall_started_ = false;
};

}  // namespace gpumip::obs

// Hook macro for solver-side tick sites. Zero-cost in GPUMIP_OBS=OFF
// builds (parsed, never evaluated), one thread-local read when ON and no
// sampler is bound.
#ifdef GPUMIP_OBS_ENABLED
#define GPUMIP_OBS_SAMPLE_TICK(sim_now) ::gpumip::obs::Sampler::tick_bound(sim_now)
#else
#define GPUMIP_OBS_SAMPLE_TICK(sim_now)                 \
  do {                                                  \
    if (false) static_cast<void>(sim_now);              \
  } while (false)
#endif
