#include "gpu/cost_model.hpp"

#include <algorithm>

namespace gpumip::gpu {

CostModelConfig CostModelConfig::scaled(double factor) const {
  CostModelConfig out = *this;
  out.dense_flops *= factor;
  out.mem_bandwidth *= factor;
  out.pcie_bandwidth *= factor;
  return out;
}

KernelCost KernelCost::dense(double flops, double n_doubles) {
  KernelCost cost;
  cost.flops = flops;
  cost.bytes = 8.0 * n_doubles;
  cost.divergence = 0.0;
  cost.sparse = false;
  return cost;
}

KernelCost KernelCost::sparse_irregular(double flops, double n_doubles, double divergence) {
  KernelCost cost;
  cost.flops = flops;
  cost.bytes = 8.0 * n_doubles;
  cost.divergence = divergence;
  cost.sparse = true;
  return cost;
}

double kernel_seconds(const CostModelConfig& cfg, const KernelCost& cost) {
  const double occupancy = std::clamp(cost.occupancy, 1.0 / 1024.0, 1.0);
  double flops_rate = cfg.dense_flops * occupancy;
  if (cost.sparse) flops_rate *= cfg.sparse_efficiency;
  // Memory bandwidth is shared; a low-occupancy kernel cannot saturate it
  // either, but small kernels are latency-bound anyway, so we charge the
  // full-bandwidth figure and rely on launch_overhead for the floor.
  const double compute_time = cost.flops > 0 ? cost.flops / flops_rate : 0.0;
  const double memory_time = cost.bytes > 0 ? cost.bytes / cfg.mem_bandwidth : 0.0;
  const double divergence_factor =
      1.0 + std::clamp(cost.divergence, 0.0, 1.0) * (cfg.divergence_penalty - 1.0);
  return cfg.launch_overhead + std::max(compute_time, memory_time) * divergence_factor;
}

double transfer_seconds(const CostModelConfig& cfg, std::uint64_t bytes) {
  return cfg.pcie_latency + static_cast<double>(bytes) / cfg.pcie_bandwidth;
}

}  // namespace gpumip::gpu
