// Product-form-of-inverse (PFI) eta updates.
//
// When the simplex basis exchanges column r for entering column a_q, the
// new basis inverse satisfies B_new⁻¹ = E · B_old⁻¹ where E is an "eta
// matrix": the identity with column r replaced by
//     η_r = 1 / y_r,     η_i = -y_i / y_r   (i ≠ r),     y = B_old⁻¹ a_q.
// Keeping a file of eta vectors avoids refactorizing the basis each
// iteration — exactly the rank-1 update/reuse pattern the paper's sections
// 4.3 and 5.1 identify as the key GPU linear-algebra requirement. The
// update of an explicit dense B⁻¹ (apply_to_matrix) is the GPU-friendly
// dense form: a uniform m x m SIMD kernel.
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace gpumip::linalg {

/// One basis-change eta matrix.
struct Eta {
  int pivot_row = -1;
  Vector column;  // full η column of length m

  /// Builds an eta from the FTRAN result y = B⁻¹ a_q and pivot row r.
  /// Throws NumericalError if |y_r| < tol (unstable pivot).
  static Eta from_ftran(std::span<const double> y, int r, double tol = 1e-11);

  /// x := E x (forward application, used in FTRAN).
  void apply(std::span<double> x) const;
  /// yᵀ := yᵀ E (adjoint application, used in BTRAN).
  void apply_transpose(std::span<double> y) const;
  /// M := E M, column by column (dense rank-1-style kernel; the form a GPU
  /// would run to keep an explicit device-resident B⁻¹ current).
  void apply_to_matrix(Matrix& m) const;
};

/// Ordered sequence of etas accumulated since the last refactorization.
class EtaFile {
 public:
  void clear() noexcept { etas_.clear(); }
  bool empty() const noexcept { return etas_.empty(); }
  std::size_t size() const noexcept { return etas_.size(); }

  void push(Eta eta) { etas_.push_back(std::move(eta)); }

  /// x := E_k … E_1 x (oldest first), completing an FTRAN whose base-solve
  /// part has already been applied.
  void ftran(std::span<double> x) const;

  /// yᵀ := yᵀ E_k … E_1 (newest first), the BTRAN prefix before the base
  /// transpose solve.
  void btran(std::span<double> y) const;

  const std::vector<Eta>& etas() const noexcept { return etas_; }

 private:
  std::vector<Eta> etas_;
};

}  // namespace gpumip::linalg
