// Mixed integer program model: an LpModel plus integrality marks.
#pragma once

#include <vector>

#include "lp/model.hpp"

namespace gpumip::mip {

class MipModel {
 public:
  /// Mutable access to the wrapped LP. Add ROWS freely; COLUMNS must go
  /// through add_col/add_int_col/add_bin_col so integrality flags stay in
  /// sync (or call reset_lp with explicit flags).
  lp::LpModel& lp() noexcept { return lp_; }
  const lp::LpModel& lp() const noexcept { return lp_; }

  /// Replaces the wrapped LP wholesale. `integer` must have one flag per
  /// column (empty = all continuous).
  void reset_lp(lp::LpModel lp, std::vector<bool> integer = {});

  /// Adds a continuous column.
  int add_col(double obj, double lb = 0.0, double ub = lp::kInf, std::string name = "");
  /// Adds an integer column.
  int add_int_col(double obj, double lb = 0.0, double ub = lp::kInf, std::string name = "");
  /// Adds a binary column.
  int add_bin_col(double obj, std::string name = "");

  bool is_integer(int col) const { return integer_[static_cast<std::size_t>(col)]; }
  void set_integer(int col, bool integer);
  const std::vector<bool>& integer_flags() const noexcept { return integer_; }
  int num_integer() const;

  int num_cols() const noexcept { return lp_.num_cols(); }
  int num_rows() const noexcept { return lp_.num_rows(); }

  /// True when x is integral on all integer columns within tol.
  bool is_integral(std::span<const double> x, double tol = 1e-6) const;

  /// True when x satisfies all row and column bounds within tol.
  bool is_feasible(std::span<const double> x, double tol = 1e-6) const;

  void validate() const;

 private:
  lp::LpModel lp_;
  std::vector<bool> integer_;
};

}  // namespace gpumip::mip
