// gpumip-lint hot-path rules R6-R9: call-graph-aware enforcement of the
// contracts the paper's hot-loop claims rest on (C3 factorization reuse,
// C4 cut round-trips, C5 matrix locality, C8 comms overhead — all
// statements about what must NOT happen per iteration/message/wave).
//
// The checked-in manifest (tools/gpumip-lint/hotpaths.txt) declares the
// roots; the rules then walk the over-approximate call graph from each
// root and flag, anywhere in the reachable set:
//
//   R6  heap allocation (new, container growth, allocating local
//       containers, std::function construction) — waived per site with
//       `// gpumip-lint: hot-alloc(reason)`;
//   R7  by-value passes/returns of declared payload types — waived per
//       signature with `// gpumip-lint: hot-copy(reason)`;
//   R8  blocking calls (mutex acquisition, condition waits, file I/O,
//       manifest-declared blocking primitives) reachable from a `wave`
//       root (a device-wave critical section) — waived per site with
//       `// gpumip-lint: hot-block(reason)`;
//   R9  missing trace/metric instrumentation in a root's own body.
//
// Manifest grammar (one entry per line, '#' comments):
//
//   root <function>     -- <why this is a hot path>
//   wave <function>     -- <why this is a device-wave critical section>
//   stop <function>     -- <why traversal stops here (setup/fuzz/etc.)>
//   payload <type>      -- <why copies of this type are banned>
//   blocking <function> -- <why calls to this block the caller>
//
// <function> is an unqualified name, a spelled qualified name
// (Comm::send), or a class wildcard (Scheduler::*). Roots are traversal
// boundaries for each other; `stop` entries prune. root/wave/stop entries
// that match no indexed function are themselves findings (rule HOT), so
// the manifest cannot outlive the code it describes. Allocations inside a
// `throw` statement are exempt from R6 (the error path is off the hot
// path by definition).
#pragma once

#include <string>
#include <vector>

#include "callgraph.hpp"
#include "index.hpp"
#include "lexer.hpp"
#include "lint.hpp"

namespace gpumip::lint {

struct HotPathEntry {
  std::string kind;    ///< root | wave | stop | payload | blocking
  std::string name;    ///< function name / wildcard / type token
  std::string reason;  ///< mandatory justification
  int line = 0;        ///< line in the manifest file
};

struct HotPathManifest {
  std::vector<HotPathEntry> entries;
  bool empty() const noexcept { return entries.empty(); }
};

/// Parses the manifest text. Syntax problems (unknown kind, missing
/// ` -- justification`) are reported as HOT findings against `path`.
HotPathManifest parse_hotpaths(const std::string& text, const std::string& path,
                               std::vector<Finding>& findings);

/// Runs R6-R9 over the indexed sources. `functions`/`graph` must come from
/// index_functions/build_call_graph over the same `files`.
void check_hotpaths(const std::vector<Scanned>& files, const HotPathManifest& manifest,
                    const std::string& manifest_path, const std::vector<FunctionDecl>& functions,
                    const CallGraph& graph, std::vector<Finding>& findings);

}  // namespace gpumip::lint
