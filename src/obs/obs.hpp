// Hot-path instrumentation macros over obs/metrics.hpp and obs/span.hpp.
//
// Every macro takes a string *literal* metric name and caches the registry
// lookup in a function-local static, so the steady-state cost of a call
// site is one relaxed atomic RMW (counters/gauges) or a few (histograms).
// When the GPUMIP_OBS CMake option is OFF the macros compile to nothing —
// the argument expressions are parsed (so instrumentation cannot rot) but
// never evaluated, and the metric name string is not emitted into the
// binary (scripts/check.sh's obs gate asserts this on a bench binary).
//
// Instruments with *dynamic* names (the per-rank simmpi families) cannot
// use these macros; they cache obs::Counter*/obs::Gauge* handles manually
// behind #ifdef GPUMIP_OBS_ENABLED. Every name, unit, and the paper claim
// it quantifies is catalogued in docs/METRICS.md; the bench-smoke gate
// cross-checks exported names against that glossary.
#pragma once

#include "obs/metrics.hpp"
#include "obs/span.hpp"

#define GPUMIP_OBS_CONCAT_IMPL_(a, b) a##b
#define GPUMIP_OBS_CONCAT_(a, b) GPUMIP_OBS_CONCAT_IMPL_(a, b)

#ifdef GPUMIP_OBS_ENABLED

/// Bumps counter `name` by 1.
#define GPUMIP_OBS_COUNT(name)                                        \
  do {                                                                \
    static ::gpumip::obs::Counter& gpumip_obs_metric_ =               \
        ::gpumip::obs::counter(name);                                 \
    gpumip_obs_metric_.add(1);                                        \
  } while (false)

/// Adds `amount` (nonnegative integral) to counter `name`.
#define GPUMIP_OBS_ADD(name, amount)                                  \
  do {                                                                \
    static ::gpumip::obs::Counter& gpumip_obs_metric_ =               \
        ::gpumip::obs::counter(name);                                 \
    gpumip_obs_metric_.add(static_cast<std::uint64_t>(amount));       \
  } while (false)

/// Sets gauge `name` to `value`.
#define GPUMIP_OBS_GAUGE_SET(name, value)                             \
  do {                                                                \
    static ::gpumip::obs::Gauge& gpumip_obs_metric_ =                 \
        ::gpumip::obs::gauge(name);                                   \
    gpumip_obs_metric_.set(static_cast<double>(value));               \
  } while (false)

/// Raises gauge `name` to `value` if larger (running maximum).
#define GPUMIP_OBS_GAUGE_MAX(name, value)                             \
  do {                                                                \
    static ::gpumip::obs::Gauge& gpumip_obs_metric_ =                 \
        ::gpumip::obs::gauge(name);                                   \
    gpumip_obs_metric_.set_max(static_cast<double>(value));           \
  } while (false)

/// Records `value` into histogram `name`.
#define GPUMIP_OBS_RECORD(name, value)                                \
  do {                                                                \
    static ::gpumip::obs::Histogram& gpumip_obs_metric_ =             \
        ::gpumip::obs::histogram(name);                               \
    gpumip_obs_metric_.record(static_cast<double>(value));            \
  } while (false)

/// Times the rest of the enclosing scope into histogram `name` (seconds).
#define GPUMIP_OBS_SPAN(name) \
  ::gpumip::obs::Span GPUMIP_OBS_CONCAT_(gpumip_obs_span_, __LINE__)(name)

// ---- labeled variants ----
//
// The trailing variadic arguments are one or more brace-initialized
// {"key", "value"} obs::Label pairs. Both keys and values must be
// compile-time constant at the call site: the flattened lookup is cached
// in a function-local static, so a site like
//   GPUMIP_OBS_COUNT_L("gpumip.lp.solves", {"method", "pdhg"});
// costs one relaxed RMW in steady state, same as the unlabeled macros.
// Sites with *runtime* label values (per-rank instruments) call
// obs::counter(name, {...}) directly and cache the reference themselves
// behind #ifdef GPUMIP_OBS_ENABLED, exactly like dynamic-name sites.

/// Bumps labeled counter `name{...}` by 1.
#define GPUMIP_OBS_COUNT_L(name, ...)                                 \
  do {                                                                \
    static ::gpumip::obs::Counter& gpumip_obs_metric_ =               \
        ::gpumip::obs::counter(name, {__VA_ARGS__});                  \
    gpumip_obs_metric_.add(1);                                        \
  } while (false)

/// Adds `amount` (nonnegative integral) to labeled counter `name{...}`.
#define GPUMIP_OBS_ADD_L(name, amount, ...)                           \
  do {                                                                \
    static ::gpumip::obs::Counter& gpumip_obs_metric_ =               \
        ::gpumip::obs::counter(name, {__VA_ARGS__});                  \
    gpumip_obs_metric_.add(static_cast<std::uint64_t>(amount));       \
  } while (false)

/// Sets labeled gauge `name{...}` to `value`.
#define GPUMIP_OBS_GAUGE_SET_L(name, value, ...)                      \
  do {                                                                \
    static ::gpumip::obs::Gauge& gpumip_obs_metric_ =                 \
        ::gpumip::obs::gauge(name, {__VA_ARGS__});                    \
    gpumip_obs_metric_.set(static_cast<double>(value));               \
  } while (false)

/// Records `value` into labeled histogram `name{...}`.
#define GPUMIP_OBS_RECORD_L(name, value, ...)                         \
  do {                                                                \
    static ::gpumip::obs::Histogram& gpumip_obs_metric_ =             \
        ::gpumip::obs::histogram(name, {__VA_ARGS__});                \
    gpumip_obs_metric_.record(static_cast<double>(value));            \
  } while (false)

/// Times the rest of the enclosing scope into labeled histogram
/// `name{...}` (seconds). The flattened name is also the trace span name.
#define GPUMIP_OBS_SPAN_L(name, ...)                                        \
  static const ::std::string GPUMIP_OBS_CONCAT_(gpumip_obs_span_name_,      \
                                                __LINE__) =                 \
      ::gpumip::obs::labeled_name(name, {__VA_ARGS__});                     \
  ::gpumip::obs::Span GPUMIP_OBS_CONCAT_(gpumip_obs_span_, __LINE__)(       \
      GPUMIP_OBS_CONCAT_(gpumip_obs_span_name_, __LINE__))

#else  // !GPUMIP_OBS_ENABLED

// Parsed but never evaluated (the assert.hpp idiom): the expressions stay
// semantically checked in every build, at zero runtime and code-size cost.
#define GPUMIP_OBS_COUNT(name)                          \
  do {                                                  \
    if (false) static_cast<void>(name);                 \
  } while (false)
#define GPUMIP_OBS_ADD(name, amount)                    \
  do {                                                  \
    if (false) {                                        \
      static_cast<void>(name);                          \
      static_cast<void>(amount);                        \
    }                                                   \
  } while (false)
#define GPUMIP_OBS_GAUGE_SET(name, value) GPUMIP_OBS_ADD(name, value)
#define GPUMIP_OBS_GAUGE_MAX(name, value) GPUMIP_OBS_ADD(name, value)
#define GPUMIP_OBS_RECORD(name, value) GPUMIP_OBS_ADD(name, value)
#define GPUMIP_OBS_SPAN(name)                           \
  do {                                                  \
    if (false) static_cast<void>(name);                 \
  } while (false)

// Labeled variants: the label pairs are parsed through obs::labeled_name
// so keys stay type- and grammar-checked in OFF builds, but never
// evaluated — no name or label string reaches the binary.
#define GPUMIP_OBS_COUNT_L(name, ...)                                       \
  do {                                                                      \
    if (false) static_cast<void>(::gpumip::obs::labeled_name(name, {__VA_ARGS__})); \
  } while (false)
#define GPUMIP_OBS_ADD_L(name, amount, ...)                                 \
  do {                                                                      \
    if (false) {                                                            \
      static_cast<void>(::gpumip::obs::labeled_name(name, {__VA_ARGS__}));  \
      static_cast<void>(amount);                                            \
    }                                                                       \
  } while (false)
#define GPUMIP_OBS_GAUGE_SET_L(name, value, ...) GPUMIP_OBS_ADD_L(name, value, __VA_ARGS__)
#define GPUMIP_OBS_RECORD_L(name, value, ...) GPUMIP_OBS_ADD_L(name, value, __VA_ARGS__)
#define GPUMIP_OBS_SPAN_L(name, ...) GPUMIP_OBS_COUNT_L(name, __VA_ARGS__)

#endif  // GPUMIP_OBS_ENABLED
