// gpumip-trace: timeline analyzer for the Chrome trace-event JSON written
// by obs/trace.hpp (scripts/check.sh gate 9; docs/TRACING.md).
//
// Metrics (docs/METRICS.md) aggregate totals; the exported trace keeps the
// order. This tool turns the order back into the numbers the paper's
// temporal claims are about:
//
//   * critical path   — backward chaining through the cross-rank flow DAG
//                       (simmpi send→recv arrows) from the event that ends
//                       the makespan to the start of the run,
//   * per-rank busy / blocked-on-recv / idle breakdown,
//   * H2D/D2H transfer overlap vs. kernel compute per rank (paper C5/C7),
//   * cut round-trip latency (paper C4) from the cuts.round spans.
//
// Engine is a static library (tests/test_trace.cpp drives it with in-memory
// traces); the CLI in main.cpp wraps it, mirroring tools/gpumip-lint.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace gpumip::tracetool {

/// One trace-event JSON entry, decoded into the fields the analyses use.
/// `ts`/`dur` stay in the file's microseconds; reports convert to seconds.
struct AnalyzerEvent {
  std::string name;
  char ph = '?';          ///< B, E, i, X, s, f, M
  int pid = 0;
  long long tid = 0;
  double ts = 0.0;        ///< microseconds
  double dur = 0.0;       ///< microseconds, ph == 'X' only
  std::string flow_id;    ///< ph == 's'/'f' only
  int rank = -1;          ///< args.rank (-1 for unbound host threads)
  std::string lane;       ///< args.lane: cpu, h2d, d2h, kernel
  double arg = 0.0;       ///< args.arg numeric payload
};

struct Trace {
  std::vector<AnalyzerEvent> events;
  std::uint64_t dropped = 0;  ///< otherData.dropped from the exporter
  int sim_pid = 1;            ///< pid of the "simulated time" process
};

/// Decodes a trace-event JSON document (object form with "traceEvents", as
/// obs::trace::to_json writes, or a bare event array). Returns false and
/// sets `error` on malformed JSON or a missing/ill-typed traceEvents list.
bool parse_trace(const std::string& json, Trace& out, std::string& error);

struct RankBreakdown {
  int rank = -1;
  long events = 0;
  double span_seconds = 0.0;     ///< first event to last event, sim time
  double busy_seconds = 0.0;     ///< covered by non-wait spans
  double blocked_seconds = 0.0;  ///< covered by gpumip.simmpi.recv.wait
  double idle_seconds = 0.0;     ///< span minus busy minus blocked
};

/// One cross-rank arrow on the critical path: work on `to_rank` after
/// `recv_ts` depended on `from_rank` up to `send_ts`.
struct CriticalHop {
  int from_rank = -1;
  int to_rank = -1;
  double send_ts_seconds = 0.0;
  double recv_ts_seconds = 0.0;
};

struct DeviceBreakdown {
  int rank = -1;  ///< rank whose simulated device these lanes belong to
  double h2d_seconds = 0.0;
  double d2h_seconds = 0.0;
  double kernel_seconds = 0.0;
  double overlap_seconds = 0.0;  ///< transfer busy ∩ kernel busy
};

struct Report {
  long events = 0;
  std::uint64_t dropped = 0;
  double makespan_seconds = 0.0;  ///< latest sim timestamp in the trace
  std::vector<RankBreakdown> ranks;
  /// Forward order (run start → makespan end); empty when the trace has no
  /// matched flow reachable backward from the makespan event.
  std::vector<CriticalHop> critical_path;
  double critical_start_seconds = 0.0;
  double critical_end_seconds = 0.0;
  std::vector<DeviceBreakdown> devices;
  long flows_total = 0;    ///< distinct flow ids
  long flows_matched = 0;  ///< ids with both the 's' and the 'f' half
  long cut_rounds = 0;
  double cut_latency_total_seconds = 0.0;
  double cut_latency_max_seconds = 0.0;
};

Report analyze(const Trace& trace);

/// Human-readable multi-section report (what the CLI prints).
std::string format_report(const Report& report);

/// Empty string when the trace exercises the analyses (matched flows, a
/// critical path with at least one hop, two or more ranks); otherwise the
/// reason it is trivial. Gate 9 runs this against the committed fixture.
std::string verify_nontrivial(const Report& report);

/// Built-in fixtures with known-by-construction answers: parses and
/// analyzes synthetic traces, checks exact interval arithmetic, flow
/// matching, critical-path chaining, and malformed-input rejection.
/// Prints one line per fixture; returns false if any expectation fails.
bool run_self_check(std::ostream& out);

}  // namespace gpumip::tracetool
