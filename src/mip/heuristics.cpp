#include "mip/heuristics.hpp"

#include <cmath>

#include "lp/standard_form.hpp"

namespace gpumip::mip {

namespace {

double min_objective(const MipModel& model, const lp::StandardForm& form,
                     std::span<const double> x) {
  double obj = 0.0;
  for (int j = 0; j < model.num_cols(); ++j) {
    obj += form.c[static_cast<std::size_t>(j)] * x[static_cast<std::size_t>(j)];
  }
  return obj;
}

}  // namespace

HeuristicResult rounding_heuristic(const MipModel& model, const lp::StandardForm& form,
                                   std::span<const double> lp_x, double int_tol) {
  HeuristicResult result;
  linalg::Vector rounded(lp_x.begin(), lp_x.begin() + model.num_cols());
  for (int j = 0; j < model.num_cols(); ++j) {
    if (model.is_integer(j)) {
      rounded[static_cast<std::size_t>(j)] = std::round(rounded[static_cast<std::size_t>(j)]);
    }
  }
  if (model.is_feasible(rounded, 1e-6) && model.is_integral(rounded, int_tol)) {
    result.found = true;
    result.x = std::move(rounded);
    result.objective = min_objective(model, form, result.x);
  }
  return result;
}

HeuristicResult diving_heuristic(const MipModel& model, const lp::StandardForm& form,
                                 lp::SimplexSolver& solver, const lp::LpResult& relaxation,
                                 int max_dives, double int_tol) {
  HeuristicResult result;
  if (relaxation.status != lp::LpStatus::Optimal) return result;
  linalg::Vector lb = form.lb, ub = form.ub;
  lp::LpResult current = relaxation;

  for (int dive = 0; dive < max_dives; ++dive) {
    // Find the most fractional integer variable.
    int var = -1;
    double best_dist = int_tol;
    for (int j = 0; j < model.num_cols(); ++j) {
      if (!model.is_integer(j)) continue;
      const double v = current.x[static_cast<std::size_t>(j)];
      const double dist = std::fabs(v - std::round(v));
      if (dist > best_dist) {
        best_dist = dist;
        var = j;
      }
    }
    if (var < 0) {
      // Integral: accept.
      result.found = true;
      result.x.assign(current.x.begin(), current.x.begin() + model.num_cols());
      // Snap near-integers exactly.
      for (int j = 0; j < model.num_cols(); ++j) {
        if (model.is_integer(j)) {
          result.x[static_cast<std::size_t>(j)] = std::round(result.x[static_cast<std::size_t>(j)]);
        }
      }
      result.objective = min_objective(model, form, result.x);
      return result;
    }
    const std::size_t k = static_cast<std::size_t>(var);
    const double value = current.x[k];
    const double first = std::round(value);
    const double second = first > value ? std::floor(value) : std::ceil(value);
    bool advanced = false;
    for (const double target : {first, second}) {
      if (target < form.lb[k] - 1e-9 || target > form.ub[k] + 1e-9) continue;
      linalg::Vector try_lb = lb, try_ub = ub;
      try_lb[k] = try_ub[k] = target;
      lp::LpResult next = solver.resolve_dual(try_lb, try_ub, current.basis);
      if (next.status == lp::LpStatus::Optimal) {
        lb = std::move(try_lb);
        ub = std::move(try_ub);
        current = std::move(next);
        advanced = true;
        break;
      }
    }
    if (!advanced) return result;  // both directions infeasible: give up
  }
  return result;
}

HeuristicResult feasibility_pump(const MipModel& model, int max_rounds, double int_tol) {
  HeuristicResult result;
  const lp::StandardForm form = lp::build_standard_form(model.lp());
  lp::SimplexSolver solver(form);
  lp::LpResult relax = solver.solve_default();
  if (relax.status != lp::LpStatus::Optimal) return result;

  linalg::Vector x(relax.x.begin(), relax.x.begin() + model.num_cols());
  for (int round = 0; round < max_rounds; ++round) {
    // Round.
    linalg::Vector target = x;
    for (int j = 0; j < model.num_cols(); ++j) {
      if (model.is_integer(j)) target[static_cast<std::size_t>(j)] = std::round(target[static_cast<std::size_t>(j)]);
    }
    if (model.is_feasible(target, 1e-6) && model.is_integral(target, int_tol)) {
      result.found = true;
      result.x = target;
      result.objective = min_objective(model, form, target);
      return result;
    }
    // Project: minimize L1 distance of integer vars to the rounded point.
    // |x_j - t_j| is linearized by splitting on the rounding direction:
    // if t_j was rounded down, distance along the feasible side is x_j-t_j;
    // if up, t_j-x_j (x stays in [floor, ceil] only approximately, but the
    // blend keeps the pump moving).
    lp::LpModel dist = model.lp();
    for (int j = 0; j < model.num_cols(); ++j) {
      double c = 0.0;
      if (model.is_integer(j)) {
        c = x[static_cast<std::size_t>(j)] >= target[static_cast<std::size_t>(j)] ? 1.0 : -1.0;
      }
      dist.col(j).obj = c;
    }
    dist.set_sense(lp::Sense::Minimize);
    const lp::StandardForm dist_form = lp::build_standard_form(dist);
    lp::SimplexSolver dist_solver(dist_form);
    lp::LpResult projected = dist_solver.solve_default();
    if (projected.status != lp::LpStatus::Optimal) return result;
    linalg::Vector next(projected.x.begin(), projected.x.begin() + model.num_cols());
    if (linalg::max_abs_diff(next, x) < 1e-9) return result;  // cycling: stop
    x = std::move(next);
  }
  return result;
}

}  // namespace gpumip::mip
