// Dense Cholesky factorization (potrf/potrs-style) for symmetric positive
// definite systems — the direct solver behind interior-point normal
// equations A D Aᵀ Δy = r (paper section 2.3's preferred method for sparse
// real-world LPs; the dense variant is the GPU-friendly path).
#pragma once

#include <span>

#include "linalg/matrix.hpp"

namespace gpumip::linalg {

class DenseCholesky {
 public:
  DenseCholesky() = default;

  /// Factors A = L Lᵀ. `ridge` is added to the diagonal before factoring
  /// (regularization for nearly-singular normal equations). Throws
  /// NumericalError if A (+ridge I) is not positive definite.
  explicit DenseCholesky(const Matrix& a, double ridge = 0.0);

  int order() const noexcept { return l_.rows(); }
  bool valid() const noexcept { return !l_.empty(); }

  /// Solves A x = b; returns x.
  Vector solve(std::span<const double> b) const;

  /// Lower-triangular factor.
  const Matrix& l() const noexcept { return l_; }

 private:
  Matrix l_;
};

}  // namespace gpumip::linalg
