// Lightweight LP/MIP presolve: fixed-variable substitution, empty-row
// checks, singleton-row bound tightening. Runs on the CPU before anything
// is shipped to the device (the "setup stage" the paper's hybrid strategy
// keeps host-side).
#pragma once

#include <optional>
#include <vector>

#include "lp/model.hpp"

namespace gpumip::lp {

struct PresolveResult {
  bool infeasible = false;
  LpModel reduced;                 ///< the smaller model (valid if !infeasible)
  std::vector<int> col_map;        ///< original col -> reduced col, or -1 if fixed
  std::vector<double> fixed_value; ///< value for fixed originals (where col_map == -1)
  std::vector<int> row_map;        ///< original row -> reduced row, or -1 if removed
  int rows_removed = 0;
  int cols_removed = 0;
  int bounds_tightened = 0;

  /// Expands a reduced-space solution back to original columns.
  linalg::Vector postsolve(std::span<const double> reduced_x) const;
};

/// Runs presolve to a fixpoint. `integer_cols[j]` marks integrality (bound
/// tightening rounds integer bounds); pass empty for a pure LP.
PresolveResult presolve(const LpModel& model, const std::vector<bool>& integer_cols = {});

}  // namespace gpumip::lp
