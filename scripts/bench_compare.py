#!/usr/bin/env python3
"""Compare a fresh bench run against the committed baseline.

Usage: bench_compare.py BASELINE.json CURRENT.json

Both files are gpumip.bench-baseline.v1 documents (scripts/bench.sh).
Counters and gauges are driven by the simulated device/network clocks and
are deterministic run-to-run, so they are compared with tight relative
tolerances; histograms record host wall time (a snapshot of the machine
that produced the baseline) and are not compared at all.

Tolerance classes, first match wins:
  * skipped — values that are host-timing noise, not solver work:
      gpumip.obs.*                    trace-ring drops and sampler-row
                                      counts depend on how much tracing
                                      and sampling ran, never on the solver
      *{...rank=<r>...}               per-rank splits (simmpi traffic,
                                      supervisor dispatch) depend on which
                                      worker won each dispatch race
                                      (the world-total counters are compared)
      *.idle_seconds / *.idle_seconds{...}  wall-clock blocking time
      gpumip.supervisor.checkpoints   quiesced-point hits depend on timing
  * gpumip.gpu.* / gpumip.lp.* /      2% — the paper-claim ledgers (transfer
    gpumip.mip.*                      bytes, refactor counts, node counts)
                                      must not drift in the deterministic
                                      single-process benches
  * everything else                   25% — world-total protocol traffic
                                      varies with benign timing

In parallel-supervisor benches (e8_scaleout) ALL non-skipped metrics use
the loose tolerance: incumbent discovery order changes pruning, so even
the MIP ledgers legitimately wobble by a few percent there.

A metric or bench present in the baseline but missing from the current run
fails the compare; a NEW metric in the current run is only a warning (the
fix is to regenerate the baseline with scripts/bench.sh).

Exit status: 0 = within tolerance, 1 = regression (or malformed input).
"""

import json
import re
import sys

SKIP = re.compile(r"gpumip\.obs\."
                  r"|.*\{[^}]*\brank=\d+"
                  r"|.*\.idle_seconds(\{[^}]*\})?$"
                  r"|gpumip\.supervisor\.checkpoints$")
TIGHT = re.compile(r"gpumip\.(gpu|lp|mip)\.")
TIGHT_REL = 0.02
LOOSE_REL = 0.25
ABS_FLOOR = 1e-9  # slack for values at or near zero
# Benches whose solves run under the thread-per-rank supervisor: outcomes
# are schedule-independent (the determinism sweep proves that) but event
# counts are not, so nothing there gets the tight tolerance.
PARALLEL_BENCHES = {"e8_scaleout"}


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "gpumip.bench-baseline.v1":
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    return doc


def tolerance(bench, name):
    if SKIP.match(name):
        return None
    if bench in PARALLEL_BENCHES:
        return LOOSE_REL
    return TIGHT_REL if TIGHT.match(name) else LOOSE_REL


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__.strip().splitlines()[2].strip())
    baseline, current = load(sys.argv[1]), load(sys.argv[2])

    failures, warnings, compared = [], [], 0
    for bench, base in sorted(baseline["benches"].items()):
        cur = current["benches"].get(bench)
        if cur is None:
            failures.append(f"{bench}: bench missing from current run")
            continue
        for kind in ("counters", "gauges"):
            for name, base_value in sorted(base[kind].items()):
                rel = tolerance(bench, name)
                if rel is None:
                    continue
                if name not in cur[kind]:
                    failures.append(f"{bench}: {kind[:-1]} {name} missing from current run")
                    continue
                cur_value = cur[kind][name]
                compared += 1
                limit = max(rel * abs(base_value), ABS_FLOOR)
                if abs(cur_value - base_value) > limit:
                    failures.append(
                        f"{bench}: {name} = {cur_value:g} vs baseline {base_value:g} "
                        f"(|delta| {abs(cur_value - base_value):g} > {limit:g}, "
                        f"tolerance {rel:.0%})")
            for name in sorted(cur[kind]):
                if name not in base[kind] and tolerance(bench, name) is not None:
                    warnings.append(f"{bench}: new {kind[:-1]} {name} "
                                    "(regenerate the baseline to start tracking it)")

    for line in warnings:
        print(f"    warning: {line}")
    if failures:
        print(f"bench compare: {len(failures)} regression(s) "
              f"({compared} metrics compared):", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        sys.exit(1)
    print(f"    bench compare: {compared} metrics within tolerance "
          f"({len(warnings)} warning(s))")


if __name__ == "__main__":
    main()
