// Sparse LU factorization with partial pivoting (left-looking,
// Gilbert-Peierls style with a dense work vector — the family of
// algorithms behind KLU/GLU that the paper surveys in section 4.2).
//
// Computes P A = L U for square sparse A. L is unit lower triangular
// (stored by columns, original row indices), U upper triangular in pivot
// position space.
#pragma once

#include <vector>

#include "sparse/formats.hpp"

namespace gpumip::sparse {

class SparseLU {
 public:
  SparseLU() = default;

  /// Factors A (CSC). Throws NumericalError when numerically singular.
  explicit SparseLU(const Csc& a, double pivot_tol = 1e-12);

  int order() const noexcept { return n_; }
  bool valid() const noexcept { return n_ > 0; }

  /// Solves A x = b.
  linalg::Vector solve(std::span<const double> b) const;

  /// Nonzeros in the factors (fill metric for ordering experiments).
  long factor_nnz() const noexcept;

  /// pivot_row[k] = original row pivoting position k.
  const std::vector<int>& pivot_rows() const noexcept { return pivot_row_; }

 private:
  struct Entry {
    int index;     // L: original row; U: pivot position k
    double value;
  };
  int n_ = 0;
  std::vector<std::vector<Entry>> l_cols_;  // unit diagonal implicit
  std::vector<std::vector<Entry>> u_cols_;  // strictly-upper entries
  std::vector<double> u_diag_;
  std::vector<int> pivot_row_;  // position -> original row
  std::vector<int> pinv_;       // original row -> position
};

}  // namespace gpumip::sparse
