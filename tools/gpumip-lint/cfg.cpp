#include "cfg.hpp"

#include <algorithm>

namespace gpumip::lint {
namespace {

constexpr std::size_t npos = std::string::npos;

/// Offset of the close bracket matching the open bracket at `pos`
/// (same-kind counting over the blanked text); `end` when unbalanced.
std::size_t match_bracket(const std::string& s, std::size_t pos, std::size_t end) {
  const char open = s[pos];
  const char close = open == '(' ? ')' : open == '[' ? ']' : '}';
  int depth = 0;
  for (std::size_t i = pos; i < end; ++i) {
    if (s[i] == open) {
      ++depth;
    } else if (s[i] == close && --depth == 0) {
      return i;
    }
  }
  return end;
}

std::string ident_run_before(const std::string& s, std::size_t pos) {
  std::size_t begin = pos;
  while (begin > 0 && is_ident_char(s[begin - 1])) --begin;
  return s.substr(begin, pos - begin);
}

/// True when the `[` at `pos` opens a lambda introducer rather than a
/// subscript/array declarator: the previous non-space token must not be an
/// expression tail (identifier, `)`, `]`) — except for the keywords that
/// legally precede a lambda expression.
bool is_lambda_intro(const std::string& s, std::size_t pos) {
  std::size_t q = pos;
  while (q > 0 && is_space(s[q - 1])) --q;
  if (q == 0) return true;
  const char prev = s[q - 1];
  if (prev == ')' || prev == ']') return false;
  if (is_ident_char(prev)) {
    const std::string run = ident_run_before(s, q);
    return run == "return" || run == "co_return" || run == "co_yield" || run == "case";
  }
  return true;
}

/// When the `[` at `pos` opens a lambda, the offset of its body's `{`;
/// npos otherwise. Walks capture list, optional parameter list, and the
/// specifier/trailing-return tokens in between.
std::size_t lambda_body_brace(const std::string& s, std::size_t pos, std::size_t end) {
  std::size_t close = match_bracket(s, pos, end);
  if (close >= end) return npos;
  std::size_t p = skip_ws(s, close + 1);
  if (p < end && s[p] == '(') p = skip_ws(s, match_bracket(s, p, end) + 1);
  while (p < end) {
    const char c = s[p];
    if (c == '{') return p;
    if (is_ident_char(c)) {  // mutable / noexcept / constexpr / type names
      while (p < end && is_ident_char(s[p])) ++p;
      p = skip_ws(s, p);
      continue;
    }
    if (s.compare(p, 2, "->") == 0 || s.compare(p, 2, "::") == 0) {
      p = skip_ws(s, p + 2);
      continue;
    }
    if (c == '(') {  // noexcept(...)
      p = skip_ws(s, match_bracket(s, p, end) + 1);
      continue;
    }
    if (c == '<') {  // template args in a trailing return type
      int depth = 0;
      while (p < end) {
        if (s[p] == '<') ++depth;
        if (s[p] == '>' && --depth == 0) break;
        ++p;
      }
      p = skip_ws(s, p + 1);
      continue;
    }
    if (c == '&' || c == '*') {
      p = skip_ws(s, p + 1);
      continue;
    }
    return npos;
  }
  return npos;
}

class Builder {
 public:
  Builder(const std::string& s, const std::set<std::string>& noreturn)
      : s_(s), noreturn_(noreturn) {}

  Cfg build(std::size_t body_begin, std::size_t body_end,
            std::vector<std::pair<std::size_t, std::size_t>>& lambdas_out) {
    lambdas_ = &lambdas_out;
    cfg_ = Cfg{};
    cfg_.body_begin = body_begin;
    cfg_.body_end = body_end;
    cfg_.entry = node();
    cfg_.exit = node();
    const int tail = seq(body_begin + 1, body_end, cfg_.entry);
    if (tail >= 0) {
      // Control can fall off the end: a synthetic (empty-text) return so
      // exit-path rules need no special case for the closing brace.
      stmt(tail, body_end, body_end, StmtKind::kReturn);
      edge(tail, cfg_.exit);
    }
    return std::move(cfg_);
  }

 private:
  const std::string& s_;
  const std::set<std::string>& noreturn_;
  Cfg cfg_;
  std::vector<std::pair<std::size_t, std::size_t>>* lambdas_ = nullptr;
  struct Loop {
    int cont = -1;  ///< continue target (-1 inside switch with no loop)
    int brk = -1;   ///< break target
    bool brk_used = false;
  };
  std::vector<Loop> loops_;

  int node() {
    cfg_.nodes.emplace_back();
    return static_cast<int>(cfg_.nodes.size()) - 1;
  }
  void edge(int from, int to) {
    if (from < 0 || to < 0) return;
    std::vector<int>& succ = cfg_.nodes[static_cast<std::size_t>(from)].succ;
    if (std::find(succ.begin(), succ.end(), to) == succ.end()) succ.push_back(to);
  }
  void stmt(int n, std::size_t b, std::size_t e, StmtKind k) {
    if (n >= 0) cfg_.nodes[static_cast<std::size_t>(n)].stmts.push_back({b, e, k});
  }

  /// Records every lambda body inside [b,e): masked out of the enclosing
  /// statements via Cfg::carved, and queued for its own graph.
  void carve_lambdas(std::size_t b, std::size_t e) {
    for (std::size_t p = b; p < e; ++p) {
      if (s_[p] != '[') continue;
      if (p + 1 < e && s_[p + 1] == '[') {  // [[attribute]]
        const std::size_t close = s_.find("]]", p);
        p = (close == npos || close >= e) ? e : close + 1;
        continue;
      }
      if (!is_lambda_intro(s_, p)) continue;
      const std::size_t brace = lambda_body_brace(s_, p, e);
      if (brace == npos) continue;
      const std::size_t close = match_bracket(s_, brace, e);
      cfg_.carved.push_back({brace, close + 1});
      lambdas_->push_back({brace, close});
      p = close;
    }
  }

  /// Scans a simple statement from `pos`: up to the `;` at bracket depth 0
  /// (or a stray top-level `}`). Returns one past the last char of the
  /// statement text; `pos` is left on the terminator.
  std::size_t scan_simple(std::size_t& pos, std::size_t end) {
    std::size_t p = pos;
    int depth = 0;
    while (p < end) {
      const char c = s_[p];
      if (c == '(' || c == '[' || c == '{') {
        ++depth;
      } else if (c == ')' || c == ']' || c == '}') {
        if (depth == 0) break;  // stray close: malformed, stop here
        --depth;
      } else if (c == ';' && depth == 0) {
        break;
      }
      ++p;
    }
    pos = p;
    return p;
  }

  /// True when [b,e) is a statement whose leading expression is a call to
  /// a [[noreturn]] function: optional `qual::` prefixes, then a noreturn
  /// name, then '('.
  bool leading_noreturn_call(std::size_t b, std::size_t e) const {
    std::size_t p = skip_ws(s_, b);
    std::string last;
    while (p < e) {
      if (is_ident_char(s_[p])) {
        last += s_[p++];
      } else if (s_.compare(p, 2, "::") == 0) {
        last.clear();
        p += 2;
      } else {
        break;
      }
    }
    if (last.empty() || noreturn_.count(last) == 0) return false;
    p = skip_ws(s_, p);
    return p < e && s_[p] == '(';
  }

  /// Parses statements in [pos,end) into `cur`; returns the node control
  /// flows out of, or -1 when every path diverted (return/throw/break...).
  int seq(std::size_t pos, std::size_t end, int cur) {
    for (;;) {
      pos = skip_ws(s_, pos);
      if (pos >= end) return cur;
      if (cur < 0) {
        // Unreachable code after a terminator: still parsed (so nested
        // lambdas are collected and its text is checked) but into a node
        // with no predecessors — its dataflow in-state stays bottom.
        cur = node();
      }
      cur = statement(pos, end, cur);
    }
  }

  int statement(std::size_t& pos, std::size_t end, int cur) {
    const char c = s_[pos];
    if (c == '#') {  // preprocessor directive: not part of any path
      while (pos < end) {
        std::size_t eol = s_.find('\n', pos);
        if (eol == npos || eol >= end) {
          pos = end;
          break;
        }
        const bool continued = eol > pos && s_[eol - 1] == '\\';
        pos = eol + 1;
        if (!continued) break;
      }
      return cur;
    }
    if (c == ';') {
      ++pos;
      return cur;
    }
    if (c == '}') {  // defensive: seq() is bounded, but don't spin
      ++pos;
      return cur;
    }
    if (c == '{') {
      const std::size_t close = match_bracket(s_, pos, end);
      const int out = seq(pos + 1, close, cur);
      pos = close + 1;
      return out;
    }
    std::string kw;
    if (is_ident_char(c)) {
      std::size_t p = pos;
      while (p < end && is_ident_char(s_[p])) kw += s_[p++];
    }
    if (kw == "if") return do_if(pos, end, cur);
    if (kw == "while") return do_while(pos, end, cur);
    if (kw == "for") return do_for(pos, end, cur);
    if (kw == "do") return do_do(pos, end, cur);
    if (kw == "switch") return do_switch(pos, end, cur);
    if (kw == "try") return do_try(pos, end, cur);
    if (kw == "return" || kw == "co_return" || kw == "throw") {
      const std::size_t begin = pos;
      const std::size_t stop = scan_simple(pos, end);
      carve_lambdas(begin, stop);
      stmt(cur, begin, stop, kw == "throw" ? StmtKind::kThrow : StmtKind::kReturn);
      edge(cur, cfg_.exit);
      if (pos < end && s_[pos] == ';') ++pos;
      return -1;
    }
    if (kw == "break" || kw == "continue") {
      stmt(cur, pos, pos + kw.size(), StmtKind::kPlain);
      int target = -1;
      if (!loops_.empty()) {
        if (kw == "break") {
          target = loops_.back().brk;
          loops_.back().brk_used = true;
        } else {
          target = loops_.back().cont;
        }
      }
      edge(cur, target >= 0 ? target : cfg_.exit);
      scan_simple(pos, end);
      if (pos < end && s_[pos] == ';') ++pos;
      return -1;
    }
    if (kw == "goto") {  // conservative: treat as an opaque exit
      const std::size_t begin = pos;
      const std::size_t stop = scan_simple(pos, end);
      stmt(cur, begin, stop, StmtKind::kPlain);
      edge(cur, cfg_.exit);
      if (pos < end && s_[pos] == ';') ++pos;
      return -1;
    }
    // Plain expression/declaration statement.
    const std::size_t begin = pos;
    const std::size_t stop = scan_simple(pos, end);
    if (stop == begin && (pos >= end || s_[pos] != ';')) {
      ++pos;  // stray close bracket: skip it rather than loop forever
      return cur;
    }
    carve_lambdas(begin, stop);
    const bool diverges = leading_noreturn_call(begin, stop);
    stmt(cur, begin, stop, diverges ? StmtKind::kNoreturnCall : StmtKind::kPlain);
    if (pos < end && s_[pos] == ';') ++pos;
    if (diverges) {
      edge(cur, cfg_.exit);
      return -1;
    }
    return cur;
  }

  /// The `(...)` starting at `pos` (after skipping ws); returns false when
  /// the expected paren is missing (malformed input degrades gracefully).
  bool parens(std::size_t& pos, std::size_t end, std::size_t& open, std::size_t& close) {
    pos = skip_ws(s_, pos);
    if (pos >= end || s_[pos] != '(') return false;
    open = pos;
    close = match_bracket(s_, pos, end);
    pos = close + 1;
    return true;
  }

  bool cond_always_true(std::size_t b, std::size_t e) const {
    std::size_t p = skip_ws(s_, b);
    std::size_t q = e;
    while (q > p && is_space(s_[q - 1])) --q;
    const std::string text = s_.substr(p, q - p);
    return text.empty() || text == "true" || text == "1";
  }

  int do_if(std::size_t& pos, std::size_t end, int cur) {
    pos += 2;
    pos = skip_ws(s_, pos);
    if (s_.compare(pos, 9, "constexpr") == 0 &&
        (pos + 9 >= end || !is_ident_char(s_[pos + 9]))) {
      pos = skip_ws(s_, pos + 9);
    }
    std::size_t open = 0, close = 0;
    if (!parens(pos, end, open, close)) return cur;
    carve_lambdas(open, close);
    stmt(cur, open, close + 1, StmtKind::kCond);
    const int then_entry = node();
    edge(cur, then_entry);
    pos = skip_ws(s_, pos);
    const int then_out = statement(pos, end, then_entry);
    const int join = node();
    bool reaches_join = false;
    const std::size_t after = skip_ws(s_, pos);
    if (after + 4 <= end && s_.compare(after, 4, "else") == 0 &&
        (after + 4 >= end || !is_ident_char(s_[after + 4]))) {
      pos = skip_ws(s_, after + 4);
      const int else_entry = node();
      edge(cur, else_entry);
      const int else_out = statement(pos, end, else_entry);
      if (else_out >= 0) {
        edge(else_out, join);
        reaches_join = true;
      }
    } else {
      edge(cur, join);
      reaches_join = true;
    }
    if (then_out >= 0) {
      edge(then_out, join);
      reaches_join = true;
    }
    return reaches_join ? join : -1;
  }

  int do_while(std::size_t& pos, std::size_t end, int cur) {
    pos += 5;
    std::size_t open = 0, close = 0;
    if (!parens(pos, end, open, close)) return cur;
    carve_lambdas(open, close);
    const int head = node();
    edge(cur, head);
    stmt(head, open, close + 1, StmtKind::kCond);
    const bool infinite = cond_always_true(open + 1, close);
    const int body_entry = node();
    const int join = node();
    edge(head, body_entry);
    if (!infinite) edge(head, join);
    loops_.push_back({head, join, false});
    pos = skip_ws(s_, pos);
    const int body_out = statement(pos, end, body_entry);
    const bool brk_used = loops_.back().brk_used;
    loops_.pop_back();
    edge(body_out, head);
    return (infinite && !brk_used) ? -1 : join;
  }

  int do_for(std::size_t& pos, std::size_t end, int cur) {
    pos += 3;
    std::size_t open = 0, close = 0;
    if (!parens(pos, end, open, close)) return cur;
    carve_lambdas(open, close);
    // Top-level ';' positions inside the parens split init/cond/step; a
    // range-for header has none and is treated as one condition-ish text.
    std::vector<std::size_t> semis;
    int depth = 0;
    for (std::size_t p = open + 1; p < close; ++p) {
      const char ch = s_[p];
      if (ch == '(' || ch == '[' || ch == '{') ++depth;
      if (ch == ')' || ch == ']' || ch == '}') --depth;
      if (ch == ';' && depth == 0) semis.push_back(p);
    }
    if (semis.size() < 2) {  // range-for
      const int head = node();
      edge(cur, head);
      stmt(head, open, close + 1, StmtKind::kCond);
      const int body_entry = node();
      const int join = node();
      edge(head, body_entry);
      edge(head, join);
      loops_.push_back({head, join, false});
      pos = skip_ws(s_, pos);
      const int body_out = statement(pos, end, body_entry);
      loops_.pop_back();
      edge(body_out, head);
      return join;
    }
    stmt(cur, open + 1, semis[0], StmtKind::kPlain);
    const int head = node();
    edge(cur, head);
    stmt(head, semis[0] + 1, semis[1], StmtKind::kCond);
    const bool infinite = cond_always_true(semis[0] + 1, semis[1]);
    const int body_entry = node();
    const int step = node();
    const int join = node();
    edge(head, body_entry);
    if (!infinite) edge(head, join);
    loops_.push_back({step, join, false});
    pos = skip_ws(s_, pos);
    const int body_out = statement(pos, end, body_entry);
    const bool brk_used = loops_.back().brk_used;
    loops_.pop_back();
    edge(body_out, step);
    stmt(step, semis[1] + 1, close, StmtKind::kPlain);
    edge(step, head);
    return (infinite && !brk_used) ? -1 : join;
  }

  int do_do(std::size_t& pos, std::size_t end, int cur) {
    pos += 2;
    const int body_entry = node();
    edge(cur, body_entry);
    const int cond_node = node();
    const int join = node();
    loops_.push_back({cond_node, join, false});
    pos = skip_ws(s_, pos);
    const int body_out = statement(pos, end, body_entry);
    loops_.pop_back();
    edge(body_out, cond_node);
    pos = skip_ws(s_, pos);
    if (s_.compare(pos, 5, "while") == 0) {
      pos += 5;
      std::size_t open = 0, close = 0;
      if (parens(pos, end, open, close)) {
        carve_lambdas(open, close);
        stmt(cond_node, open, close + 1, StmtKind::kCond);
      }
      pos = skip_ws(s_, pos);
      if (pos < end && s_[pos] == ';') ++pos;
    }
    edge(cond_node, body_entry);
    edge(cond_node, join);
    return join;
  }

  int do_switch(std::size_t& pos, std::size_t end, int cur) {
    pos += 6;
    std::size_t open = 0, close = 0;
    if (!parens(pos, end, open, close)) return cur;
    carve_lambdas(open, close);
    stmt(cur, open, close + 1, StmtKind::kCond);
    pos = skip_ws(s_, pos);
    if (pos >= end || s_[pos] != '{') return cur;  // braceless switch: skip
    const std::size_t body_close = match_bracket(s_, pos, end);
    const int join = node();
    // continue inside a switch targets the enclosing loop, so propagate it.
    loops_.push_back({loops_.empty() ? -1 : loops_.back().cont, join, false});
    std::size_t p = pos + 1;
    int sect = -1;
    bool any_default = false;
    while (true) {
      p = skip_ws(s_, p);
      if (p >= body_close) break;
      std::string kw;
      if (is_ident_char(s_[p])) {
        std::size_t q = p;
        while (q < body_close && is_ident_char(s_[q])) kw += s_[q++];
      }
      if (kw == "case" || kw == "default") {
        // Scan to the label's ':' (skipping '::' and bracketed groups).
        std::size_t q = p + kw.size();
        int depth = 0;
        while (q < body_close) {
          const char ch = s_[q];
          if (ch == '(' || ch == '[' || ch == '{') ++depth;
          if (ch == ')' || ch == ']' || ch == '}') --depth;
          if (ch == ':' && depth == 0) {
            if (q + 1 < body_close && s_[q + 1] == ':') {
              q += 2;
              continue;
            }
            break;
          }
          ++q;
        }
        const int fresh = node();
        edge(cur, fresh);   // dispatch from the switch head
        edge(sect, fresh);  // fallthrough from the previous section
        sect = fresh;
        if (kw == "default") any_default = true;
        p = q + 1;
        continue;
      }
      if (sect < 0) sect = node();  // code before any label: unreachable
      sect = statement(p, body_close, sect);
      if (sect < 0) {
        // Section diverged (break/return): code until the next label is
        // unreachable; give it a fresh predecessor-less node.
        sect = node();
      }
    }
    edge(sect, join);  // last section falls out of the switch
    if (!any_default) edge(cur, join);
    loops_.pop_back();
    pos = body_close + 1;
    return join;
  }

  int do_try(std::size_t& pos, std::size_t end, int cur) {
    pos = skip_ws(s_, pos + 3);
    if (pos >= end || s_[pos] != '{') return cur;
    const std::size_t close = match_bracket(s_, pos, end);
    // The try body starts a fresh node so handlers can join both the
    // before-try state (exception on the first statement) and the
    // end-of-try state (exception after the last effect). Intermediate
    // states are approximated by this pair — documented in DESIGN.md.
    const int try_entry = node();
    edge(cur, try_entry);
    const int try_out = seq(pos + 1, close, try_entry);
    pos = close + 1;
    const int join = node();
    bool reaches_join = false;
    if (try_out >= 0) {
      edge(try_out, join);
      reaches_join = true;
    }
    for (;;) {
      const std::size_t after = skip_ws(s_, pos);
      if (!(after + 5 <= end && s_.compare(after, 5, "catch") == 0 &&
            (after + 5 >= end || !is_ident_char(s_[after + 5])))) {
        break;
      }
      pos = after + 5;
      std::size_t copen = 0, cclose = 0;
      const int centry = node();
      edge(cur, centry);
      if (try_out >= 0) edge(try_out, centry);
      if (parens(pos, end, copen, cclose)) {
        stmt(centry, copen, cclose + 1, StmtKind::kPlain);  // handler decl
      }
      pos = skip_ws(s_, pos);
      const int cout = statement(pos, end, centry);
      if (cout >= 0) {
        edge(cout, join);
        reaches_join = true;
      }
    }
    return reaches_join ? join : -1;
  }
};

}  // namespace

std::set<std::string> collect_noreturn_names(const std::vector<Scanned>& files) {
  std::set<std::string> names = {"abort", "terminate", "_Exit", "quick_exit"};
  for (const Scanned& f : files) {
    for (std::size_t at = find_word(f.clean, "noreturn", 0); at != npos;
         at = find_word(f.clean, "noreturn", at + 1)) {
      // Expect `[[noreturn]] <ret-type> name(`: the identifier run ending
      // just before the first '(' after the attribute is the declarator.
      std::size_t p = f.clean.find("]]", at);
      if (p == npos) continue;
      p += 2;
      const std::size_t paren = f.clean.find('(', p);
      if (paren == npos || paren > p + 200) continue;
      std::size_t q = paren;
      while (q > p && is_space(f.clean[q - 1])) --q;
      std::size_t b = q;
      while (b > p && is_ident_char(f.clean[b - 1])) --b;
      if (q > b) names.insert(f.clean.substr(b, q - b));
    }
  }
  return names;
}

std::vector<Cfg> build_cfgs(const std::string& clean, std::size_t body_begin,
                            std::size_t body_end,
                            const std::set<std::string>& noreturn_names) {
  std::vector<Cfg> out;
  std::vector<std::pair<std::size_t, std::size_t>> pending = {{body_begin, body_end}};
  // The cap bounds pathological nesting; real functions hold a few lambdas.
  for (std::size_t i = 0; i < pending.size() && i < 64; ++i) {
    Builder b(clean, noreturn_names);
    std::vector<std::pair<std::size_t, std::size_t>> lambdas;
    out.push_back(b.build(pending[i].first, pending[i].second, lambdas));
    pending.insert(pending.end(), lambdas.begin(), lambdas.end());
  }
  return out;
}

}  // namespace gpumip::lint
