// Scoped span timer: measures one lexical scope on the wall clock
// (support/timer.hpp) and records the duration, in seconds, into the
// histogram of the span's name. Spans nest: each thread tracks its active
// span depth, so instrumented callees inside instrumented callers are
// counted at depth 2, 3, ... — useful both for tests and for reading a
// profile (`lp.simplex.solve` fired inside `mip.solve`).
//
// Every span also opens/closes a trace event (obs/trace.hpp), so each
// GPUMIP_OBS_SPAN site appears in the exported timeline for free, under
// the span's histogram name.
//
// Hot paths use GPUMIP_OBS_SPAN from obs/obs.hpp, which compiles to
// nothing when GPUMIP_OBS is OFF; the class itself is always available.
#pragma once

#include <string_view>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/timer.hpp"

namespace gpumip::obs {

namespace detail {
inline thread_local int active_span_depth = 0;
}  // namespace detail

class Span {
 public:
  explicit Span(std::string_view name)
      : hist_(&histogram(name)), depth_(++detail::active_span_depth) {
    trace::begin(name);
  }

  ~Span() {
    --detail::active_span_depth;
    trace::end();
    hist_->record(timer_.elapsed());
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Nesting depth of this span on its thread (1 = outermost).
  int depth() const noexcept { return depth_; }

  /// Number of spans currently open on the calling thread.
  static int active_depth() noexcept { return detail::active_span_depth; }

 private:
  Histogram* hist_;
  WallTimer timer_;
  int depth_;
};

}  // namespace gpumip::obs
