#include "linalg/lu.hpp"

#include <cmath>
#include <utility>

#include "linalg/blas.hpp"

namespace gpumip::linalg {

DenseLU::DenseLU(const Matrix& a, double pivot_tol) : lu_(a) {
  check_arg(a.rows() == a.cols(), "DenseLU requires a square matrix");
  const int n = a.rows();
  pivots_.resize(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    // Partial pivot: largest |value| in column k at or below the diagonal.
    int pivot_row = k;
    double pivot_abs = std::fabs(lu_(k, k));
    for (int i = k + 1; i < n; ++i) {
      const double v = std::fabs(lu_(i, k));
      if (v > pivot_abs) {
        pivot_abs = v;
        pivot_row = i;
      }
    }
    if (pivot_abs < pivot_tol) {
      lu_ = Matrix();
      throw NumericalError("LU factorization: matrix is numerically singular at column " +
                           std::to_string(k));
    }
    pivots_[static_cast<std::size_t>(k)] = pivot_row;
    if (pivot_row != k) {
      for (int c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(pivot_row, c));
    }
    const double inv_pivot = 1.0 / lu_(k, k);
    for (int i = k + 1; i < n; ++i) {
      const double mult = lu_(i, k) * inv_pivot;
      lu_(i, k) = mult;
      if (mult == 0.0) continue;
      for (int c = k + 1; c < n; ++c) lu_(i, c) -= mult * lu_(k, c);
    }
  }
}

Vector DenseLU::solve(std::span<const double> b) const {
  check_arg(valid(), "DenseLU::solve on empty factorization");
  const int n = order();
  check_arg(static_cast<int>(b.size()) == n, "DenseLU::solve: size mismatch");
  Vector x(b.begin(), b.end());
  for (int k = 0; k < n; ++k) {
    const int p = pivots_[static_cast<std::size_t>(k)];
    if (p != k) std::swap(x[static_cast<std::size_t>(k)], x[static_cast<std::size_t>(p)]);
  }
  trsv_lower(lu_, x, /*unit_diagonal=*/true);
  trsv_upper(lu_, x);
  return x;
}

Vector DenseLU::solve_transpose(std::span<const double> b) const {
  check_arg(valid(), "DenseLU::solve_transpose on empty factorization");
  const int n = order();
  check_arg(static_cast<int>(b.size()) == n, "DenseLU::solve_transpose: size mismatch");
  // Aᵀ x = b  with PA = LU  =>  Aᵀ = Uᵀ Lᵀ P, so solve Uᵀ y = b, Lᵀ z = y,
  // then x = Pᵀ z (undo the row swaps in reverse).
  Vector x(b.begin(), b.end());
  trsv_upper_t(lu_, x);
  trsv_lower_t(lu_, x, /*unit_diagonal=*/true);
  for (int k = n - 1; k >= 0; --k) {
    const int p = pivots_[static_cast<std::size_t>(k)];
    if (p != k) std::swap(x[static_cast<std::size_t>(k)], x[static_cast<std::size_t>(p)]);
  }
  return x;
}

Matrix DenseLU::inverse() const {
  check_arg(valid(), "DenseLU::inverse on empty factorization");
  const int n = order();
  Matrix inv(n, n);
  Vector e(static_cast<std::size_t>(n), 0.0);
  for (int c = 0; c < n; ++c) {
    e[static_cast<std::size_t>(c)] = 1.0;
    Vector x = solve(e);
    inv.set_col(c, x);
    e[static_cast<std::size_t>(c)] = 0.0;
  }
  return inv;
}

double DenseLU::log_abs_det() const {
  check_arg(valid(), "DenseLU::log_abs_det on empty factorization");
  double sum = 0.0;
  for (int i = 0; i < order(); ++i) sum += std::log(std::fabs(lu_(i, i)));
  return sum;
}

}  // namespace gpumip::linalg
