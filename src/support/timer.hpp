// Wall-clock timer for host-side measurements (benchmarks report both
// wall time and the simulated device clock; see gpu/sim_clock.hpp).
#pragma once

#include <chrono>

namespace gpumip {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double elapsed() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace gpumip
