// Cutting planes (paper section 5.2: cuts are generated host-side and
// incorporated into the device matrix).
//
// Implemented families:
//  * Gomory mixed-integer (GMI) cuts from fractional rows of the optimal
//    simplex tableau — globally valid for the MIP,
//  * knapsack cover cuts for binary knapsack-like rows.
//
// Cuts are returned in the original model's variable space (slack variables
// are substituted out), ready to append as rows.
#pragma once

#include <vector>

#include "lp/result.hpp"
#include "lp/standard_form.hpp"
#include "mip/model.hpp"

namespace gpumip::mip {

/// One cut: lb <= Σ terms <= ub over structural variables.
struct Cut {
  std::vector<lp::Term> terms;
  double lb = -lp::kInf;
  double ub = lp::kInf;

  /// Activity of the cut at a point.
  double activity(std::span<const double> x) const;
  /// Violation of the cut at a point (positive = violated).
  double violation(std::span<const double> x) const;
};

struct CutOptions {
  int max_cuts = 10;
  double min_violation = 1e-4;
  double max_coefficient = 1e6;  ///< numerics guard: reject wilder cuts
};

/// GMI cuts from the optimal basis of `result` on `form`. `model` provides
/// integrality and the row definitions used to substitute slacks out.
std::vector<Cut> gomory_cuts(const MipModel& model, const lp::StandardForm& form,
                             const lp::LpResult& result, const CutOptions& options = {});

/// Cover cuts from binary knapsack rows violated by `x`.
std::vector<Cut> cover_cuts(const MipModel& model, std::span<const double> x,
                            const CutOptions& options = {});

/// Deduplicating cut pool.
class CutPool {
 public:
  /// Adds a cut unless an (approximately) identical one is present.
  /// Returns true if added.
  bool add(const Cut& cut);
  const std::vector<Cut>& cuts() const noexcept { return cuts_; }
  std::size_t size() const noexcept { return cuts_.size(); }

 private:
  std::vector<Cut> cuts_;
};

}  // namespace gpumip::mip
