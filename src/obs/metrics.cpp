#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <sstream>

#include "support/error.hpp"

namespace gpumip::obs {

void Gauge::add(double v) noexcept {
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void Gauge::set_max(double v) noexcept {
  double cur = value_.load(std::memory_order_relaxed);
  while (cur < v && !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

namespace {

int bucket_index(double v) noexcept {
  if (!(v > 0.0)) return 0;  // nonpositive and NaN underflow to bucket 0
  int exp = 0;
  const double f = std::frexp(v, &exp);  // v = f * 2^exp with f in [0.5, 1)
  // Buckets are (2^(e-1), 2^e]: an exact power of two (f == 0.5) belongs to
  // the bucket it is the upper edge of, not the next one.
  if (f == 0.5) --exp;
  const int idx = exp + Histogram::kZeroBucket;
  return std::clamp(idx, 0, Histogram::kBuckets - 1);
}

/// Upper edge of a bucket (2^(b - kZeroBucket)).
double bucket_upper(int bucket) noexcept {
  return std::ldexp(1.0, bucket - Histogram::kZeroBucket);
}

void atomic_min(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur && !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur && !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_add(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::record(double v) noexcept {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  atomic_min(min_, v);
  atomic_max(max_, v);
  atomic_add(sum_, v);
  count_.fetch_add(1, std::memory_order_relaxed);
}

double Histogram::min() const noexcept {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const noexcept {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::quantile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n)));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= rank && seen > 0) {
      // Clamp the bucket edge into the observed range so single-value
      // histograms report that value, not a power of two.
      return std::clamp(bucket_upper(b), min(), max());
    }
  }
  return max();
}

std::uint64_t Histogram::bucket_count(int bucket) const noexcept {
  if (bucket < 0 || bucket >= kBuckets) return 0;
  return buckets_[bucket].load(std::memory_order_relaxed);
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

// ---- labels ----

bool valid_label_key(std::string_view key) noexcept {
  if (key.empty()) return false;
  for (char c : key) {
    if (!((c >= 'a' && c <= 'z') || c == '_')) return false;
  }
  return true;
}

namespace {

/// Replaces bytes that would collide with the `name{k=v,...}` flattening
/// syntax so every flattened name parses back unambiguously.
void append_sanitized(std::string& out, std::string_view value) {
  for (char c : value) {
    const bool unsafe = c == '{' || c == '}' || c == ',' || c == '=' || c == '"' ||
                        c == '\\' || static_cast<unsigned char>(c) <= 0x20;
    out.push_back(unsafe ? '_' : c);
  }
}

/// Sorted-by-key view of a label list; throws on bad or duplicate keys.
std::vector<const Label*> sorted_labels(std::string_view name,
                                        std::initializer_list<Label> labels) {
  std::vector<const Label*> sorted;
  sorted.reserve(labels.size());
  for (const Label& l : labels) sorted.push_back(&l);
  std::sort(sorted.begin(), sorted.end(),
            [](const Label* a, const Label* b) { return a->key < b->key; });
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (!valid_label_key(sorted[i]->key)) {
      throw Error(ErrorCode::kInvalidArgument, "metrics: label key '" +
                                                   std::string(sorted[i]->key) + "' on '" +
                                                   std::string(name) +
                                                   "' violates the [a-z_]+ grammar");
    }
    if (i > 0 && sorted[i]->key == sorted[i - 1]->key) {
      throw Error(ErrorCode::kInvalidArgument, "metrics: duplicate label key '" +
                                                   std::string(sorted[i]->key) + "' on '" +
                                                   std::string(name) + "'");
    }
  }
  return sorted;
}

}  // namespace

std::string labeled_name(std::string_view name, std::initializer_list<Label> labels) {
  if (labels.size() == 0) return std::string(name);
  const auto sorted = sorted_labels(name, labels);
  std::string out(name);
  out.push_back('{');
  bool first = true;
  for (const Label* l : sorted) {
    if (!first) out.push_back(',');
    out.append(l->key);
    out.push_back('=');
    append_sanitized(out, l->value);
    first = false;
  }
  out.push_back('}');
  return out;
}

std::string family_name(std::string_view name, std::initializer_list<Label> labels) {
  if (labels.size() == 0) return std::string(name);
  const auto sorted = sorted_labels(name, labels);
  std::string out(name);
  out.push_back('{');
  bool first = true;
  for (const Label* l : sorted) {
    if (!first) out.push_back(',');
    out.append(l->key);
    first = false;
  }
  out.push_back('}');
  return out;
}

// ---- registry ----

struct Registry::Impl {
  mutable std::shared_mutex mutex;
  // Node-based maps: references stay valid across later insertions, so
  // call sites may cache them for the life of the process.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
  // `name{key,...}` family strings of labeled instruments, for the v2
  // export and the METRICS.md glossary gate.
  std::map<std::string, std::uint64_t, std::less<>> families;
};

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Registry::Impl& Registry::impl() const {
  static Impl impl;
  return impl;
}

namespace {

template <typename Map, typename Metric = typename Map::mapped_type::element_type>
Metric& find_or_create(std::shared_mutex& mutex, Map& map, std::string_view name) {
  {
    std::shared_lock lock(mutex);
    auto it = map.find(name);
    if (it != map.end()) return *it->second;
  }
  std::unique_lock lock(mutex);
  auto [it, inserted] = map.try_emplace(std::string(name), nullptr);
  if (inserted) it->second = std::make_unique<Metric>();
  return *it->second;
}

template <typename Map>
std::vector<std::string> sorted_names(std::shared_mutex& mutex, const Map& map) {
  std::shared_lock lock(mutex);
  std::vector<std::string> out;
  out.reserve(map.size());
  for (const auto& [name, metric] : map) out.push_back(name);
  return out;  // std::map iterates in sorted order
}

/// Shortest round-trippable representation of a double, JSON-safe (no
/// inf/nan reach this: instruments only ever hold finite values, and the
/// exporters clamp just in case).
std::string json_number(double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // %.17g may print "1e+06" etc. — all valid JSON numbers.
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
  Impl& im = impl();
  return find_or_create(im.mutex, im.counters, name);
}

Gauge& Registry::gauge(std::string_view name) {
  Impl& im = impl();
  return find_or_create(im.mutex, im.gauges, name);
}

Histogram& Registry::histogram(std::string_view name) {
  Impl& im = impl();
  return find_or_create(im.mutex, im.histograms, name);
}

namespace {

/// Labeled find_or_create: flattens the name, and on first creation also
/// records the instrument's family so the v2 export can index it.
template <typename Map, typename Families,
          typename Metric = typename Map::mapped_type::element_type>
Metric& find_or_create_labeled(std::shared_mutex& mutex, Map& map, Families& families,
                               std::string_view name, std::initializer_list<Label> labels) {
  const std::string flat = labeled_name(name, labels);
  {
    std::shared_lock lock(mutex);
    auto it = map.find(flat);
    if (it != map.end()) return *it->second;
  }
  std::unique_lock lock(mutex);
  auto [it, inserted] = map.try_emplace(flat, nullptr);
  if (inserted) {
    it->second = std::make_unique<Metric>();
    if (labels.size() != 0) ++families[family_name(name, labels)];
  }
  return *it->second;
}

}  // namespace

Counter& Registry::counter(std::string_view name, std::initializer_list<Label> labels) {
  Impl& im = impl();
  return find_or_create_labeled(im.mutex, im.counters, im.families, name, labels);
}

Gauge& Registry::gauge(std::string_view name, std::initializer_list<Label> labels) {
  Impl& im = impl();
  return find_or_create_labeled(im.mutex, im.gauges, im.families, name, labels);
}

Histogram& Registry::histogram(std::string_view name, std::initializer_list<Label> labels) {
  Impl& im = impl();
  return find_or_create_labeled(im.mutex, im.histograms, im.families, name, labels);
}

std::vector<std::string> Registry::counter_names() const {
  Impl& im = impl();
  return sorted_names(im.mutex, im.counters);
}

std::vector<std::string> Registry::gauge_names() const {
  Impl& im = impl();
  return sorted_names(im.mutex, im.gauges);
}

std::vector<std::string> Registry::histogram_names() const {
  Impl& im = impl();
  return sorted_names(im.mutex, im.histograms);
}

namespace {

template <typename Map>
const typename Map::mapped_type::element_type* find_no_create(std::shared_mutex& mutex,
                                                              const Map& map,
                                                              std::string_view name) {
  std::shared_lock lock(mutex);
  auto it = map.find(name);
  return it == map.end() ? nullptr : it->second.get();
}

}  // namespace

const Counter* Registry::find_counter(std::string_view name) const {
  Impl& im = impl();
  return find_no_create(im.mutex, im.counters, name);
}

const Gauge* Registry::find_gauge(std::string_view name) const {
  Impl& im = impl();
  return find_no_create(im.mutex, im.gauges, name);
}

const Histogram* Registry::find_histogram(std::string_view name) const {
  Impl& im = impl();
  return find_no_create(im.mutex, im.histograms, name);
}

std::vector<std::string> Registry::family_names() const {
  Impl& im = impl();
  std::shared_lock lock(im.mutex);
  std::vector<std::string> out;
  out.reserve(im.families.size());
  for (const auto& [family, combos] : im.families) out.push_back(family);
  return out;
}

void Registry::reset() {
  Impl& im = impl();
  std::unique_lock lock(im.mutex);
  for (auto& [name, c] : im.counters) c->reset();
  for (auto& [name, g] : im.gauges) g->reset();
  for (auto& [name, h] : im.histograms) h->reset();
}

std::string Registry::to_json() const {
  Impl& im = impl();
  std::shared_lock lock(im.mutex);
  std::ostringstream out;
  out << "{\n  \"schema\": \"gpumip.metrics.v2\",\n  \"enabled\": "
      << (kObsEnabled ? "true" : "false") << ",\n";

  // v2 addition: the `name{key,...}` family of every labeled instrument.
  // v1 readers that only walk the three instrument maps are unaffected.
  out << "  \"families\": [";
  bool first = true;
  for (const auto& [family, combos] : im.families) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(family) << "\"";
    first = false;
  }
  out << (first ? "" : "\n  ") << "],\n";

  out << "  \"counters\": {";
  first = true;
  for (const auto& [name, c] : im.counters) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name) << "\": " << c->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n";

  out << "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : im.gauges) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": " << json_number(g->value());
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n";

  out << "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : im.histograms) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name) << "\": {"
        << "\"count\": " << h->count() << ", \"sum\": " << json_number(h->sum())
        << ", \"min\": " << json_number(h->min()) << ", \"max\": " << json_number(h->max())
        << ", \"mean\": " << json_number(h->mean())
        << ", \"p50\": " << json_number(h->quantile(0.50))
        << ", \"p90\": " << json_number(h->quantile(0.90))
        << ", \"p99\": " << json_number(h->quantile(0.99)) << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

void Registry::export_json(const std::string& path) const {
  const std::string body = to_json();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw Error(ErrorCode::kIoError, "metrics export: cannot open '" + path + "' for writing");
  }
  out << body;
  out.flush();
  if (!out) {
    throw Error(ErrorCode::kIoError, "metrics export: write to '" + path + "' failed");
  }
}

std::string export_if_requested() {
  const char* path = std::getenv("GPUMIP_METRICS_OUT");
  if (path == nullptr || *path == '\0') return "";
  Registry::instance().export_json(path);
  return path;
}

}  // namespace gpumip::obs
