#include "index.hpp"

#include <algorithm>
#include <cctype>
#include <set>

namespace gpumip::lint {
namespace {

/// Keywords that look like `name (` in the token stream but never name a
/// function definition.
bool is_decl_keyword(const std::string& name) {
  static const std::set<std::string> kKeywords = {
      "if",     "for",       "while",    "switch",        "catch",     "return",
      "sizeof", "alignof",   "decltype", "constexpr",     "consteval", "constinit",
      "new",    "delete",    "throw",    "requires",      "static_assert",
      "alignas", "noexcept", "defined",  "case",          "operator",  "do",
      "else",   "goto",      "co_await", "co_return",     "co_yield",  "assert",
  };
  return kKeywords.count(name) != 0;
}

/// Skips a balanced (...) or {...} group starting at `pos` (which must be
/// the opening character). Returns the offset one past the closing
/// character, or npos when unbalanced.
std::size_t skip_group(const std::string& s, std::size_t pos, char open, char close) {
  int depth = 0;
  for (std::size_t i = pos; i < s.size(); ++i) {
    if (s[i] == open) ++depth;
    else if (s[i] == close && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

/// Skips a constructor member-initializer list starting just after the
/// ':' and returns the offset of the body '{', or npos when the text does
/// not parse as an initializer list. Grammar handled:
///   member ( ... )  |  member { ... }  |  Base<T> ( ... )
/// separated by commas, terminated by the body's '{'.
std::size_t skip_ctor_initializers(const std::string& s, std::size_t pos) {
  for (;;) {
    pos = skip_ws(s, pos);
    // Initializer name, possibly qualified (Base::Base) or templated.
    std::size_t start = pos;
    while (pos < s.size() && (is_ident_char(s[pos]) || s[pos] == ':')) ++pos;
    if (pos == start) return std::string::npos;
    pos = skip_ws(s, pos);
    if (pos < s.size() && s[pos] == '<') {
      pos = skip_group(s, pos, '<', '>');
      if (pos == std::string::npos) return std::string::npos;
      pos = skip_ws(s, pos);
    }
    if (pos >= s.size() || (s[pos] != '(' && s[pos] != '{')) return std::string::npos;
    pos = skip_group(s, pos, s[pos], s[pos] == '(' ? ')' : '}');
    if (pos == std::string::npos) return std::string::npos;
    pos = skip_ws(s, pos);
    if (pos < s.size() && s[pos] == ',') {
      ++pos;
      continue;
    }
    if (pos < s.size() && s[pos] == '{') return pos;
    return std::string::npos;
  }
}

}  // namespace

std::vector<FunctionDecl> index_functions(const std::vector<Scanned>& files) {
  std::vector<FunctionDecl> out;
  for (int fi = 0; fi < static_cast<int>(files.size()); ++fi) {
    const std::string& clean = files[static_cast<std::size_t>(fi)].clean;
    for (std::size_t p = clean.find('('); p != std::string::npos; p = clean.find('(', p + 1)) {
      // The identifier immediately before the '(' (no identifier: lambda,
      // cast, grouping parens — skip).
      std::size_t e = p;
      while (e > 0 && is_space(clean[e - 1])) --e;
      if (e == 0 || !is_ident_char(clean[e - 1])) continue;
      std::size_t nb = e;
      while (nb > 0 && is_ident_char(clean[nb - 1])) --nb;
      const std::string name = clean.substr(nb, e - nb);
      if (name.empty() || std::isdigit(static_cast<unsigned char>(name[0])) != 0) continue;
      if (is_decl_keyword(name)) continue;

      // Spelled qualifiers: A::B::name (template qualifiers like Foo<T>::
      // end the collection; the partial qualification is kept).
      std::size_t qb = nb;
      std::string qualified = name;
      while (qb >= 2 && clean.compare(qb - 2, 2, "::") == 0) {
        std::size_t qe = qb - 2;
        std::size_t qs = qe;
        while (qs > 0 && is_ident_char(clean[qs - 1])) --qs;
        if (qs == qe) break;  // ::name (global) or Foo<T>::name
        qualified = clean.substr(qs, qe - qs) + "::" + qualified;
        qb = qs;
      }

      const std::size_t params_end_plus = skip_group(clean, p, '(', ')');
      if (params_end_plus == std::string::npos) continue;
      const std::size_t params_end = params_end_plus - 1;

      // Between the parameter list and the body: cv/ref qualifiers,
      // noexcept(...), override/final, a trailing return type, a requires
      // clause, or a constructor initializer list. Anything else means
      // this was a call or a declaration, not a definition.
      std::size_t t = params_end + 1;
      std::size_t body_begin = std::string::npos;
      bool rejected = false;
      while (!rejected && t < clean.size()) {
        t = skip_ws(clean, t);
        if (t >= clean.size()) break;
        const char ch = clean[t];
        if (ch == '{') {
          body_begin = t;
          break;
        }
        if (ch == '&') {
          ++t;
        } else if (ch == '-' && t + 1 < clean.size() && clean[t + 1] == '>') {
          // Trailing return type: skip to the body '{' or a terminator.
          t += 2;
          int depth = 0;
          while (t < clean.size()) {
            const char c2 = clean[t];
            if (c2 == '(') ++depth;
            else if (c2 == ')') --depth;
            else if (depth == 0 && (c2 == '{' || c2 == ';' || c2 == '=')) break;
            ++t;
          }
        } else if (ch == ':') {
          if (t + 1 < clean.size() && clean[t + 1] == ':') {
            rejected = true;
            break;
          }
          body_begin = skip_ctor_initializers(clean, t + 1);
          if (body_begin == std::string::npos) rejected = true;
          break;
        } else if (is_ident_char(ch)) {
          std::size_t ts = t;
          while (t < clean.size() && is_ident_char(clean[t])) ++t;
          const std::string tok = clean.substr(ts, t - ts);
          if (tok == "const" || tok == "override" || tok == "final" || tok == "mutable" ||
              tok == "try") {
            continue;
          }
          if (tok == "noexcept" || tok == "throw") {
            std::size_t after = skip_ws(clean, t);
            if (after < clean.size() && clean[after] == '(') {
              std::size_t g = skip_group(clean, after, '(', ')');
              if (g == std::string::npos) {
                rejected = true;
                break;
              }
              t = g;
            }
            continue;
          }
          if (tok == "requires") {
            while (t < clean.size() && clean[t] != '{' && clean[t] != ';') ++t;
            continue;
          }
          rejected = true;
        } else {
          rejected = true;
        }
      }
      if (rejected || body_begin == std::string::npos) continue;
      std::size_t body_end_plus = skip_group(clean, body_begin, '{', '}');
      if (body_end_plus == std::string::npos) continue;

      FunctionDecl d;
      d.name = name;
      d.qualified = qualified;
      d.file_index = fi;
      d.name_begin = qb;
      d.line = line_of(files[static_cast<std::size_t>(fi)], qb);
      // Heuristic return-type start: just after the previous statement or
      // brace boundary. May include storage/attribute tokens; the rules
      // only look for payload-type tokens inside it, so extra prefix
      // tokens are harmless.
      std::size_t rb = clean.find_last_of(";{}", qb);
      d.ret_begin = (rb == std::string::npos) ? 0 : rb + 1;
      d.params_begin = p;
      d.params_end = params_end;
      d.body_begin = body_begin;
      d.body_end = body_end_plus - 1;
      out.push_back(std::move(d));
    }
  }
  std::sort(out.begin(), out.end(), [](const FunctionDecl& a, const FunctionDecl& b) {
    return std::tie(a.file_index, a.body_begin) < std::tie(b.file_index, b.body_begin);
  });
  return out;
}

int enclosing_function(const std::vector<FunctionDecl>& functions, int file_index,
                       std::size_t offset) {
  int best = -1;
  std::size_t best_begin = 0;
  for (int i = 0; i < static_cast<int>(functions.size()); ++i) {
    const FunctionDecl& d = functions[static_cast<std::size_t>(i)];
    if (d.file_index != file_index) continue;
    if (d.body_begin < offset && offset < d.body_end &&
        (best == -1 || d.body_begin > best_begin)) {
      best = i;
      best_begin = d.body_begin;
    }
  }
  return best;
}

}  // namespace gpumip::lint
