#!/usr/bin/env bash
# Full correctness sweep for the analysis toolchain (DESIGN.md, "Checked
# builds & invariants", "simmpi concurrency model", "Static analysis", and
# "Tracing"). Runs eleven independent gates and exits nonzero if any of
# them finds a problem:
#
#   1. sanitize   — ASan+UBSan build (-DGPUMIP_SANITIZE=ON) + full ctest.
#   2. checked    — GPUMIP_CHECKED build (invariant validators live) + ctest.
#   3. tsan       — ThreadSanitizer build (-DGPUMIP_SANITIZE=thread) + full
#                   ctest: every data race in the thread-per-rank simmpi
#                   runtime is a hard failure (halt_on_error=1, so detected
#                   races fail the test even through pipes).
#   4. schedule   — delivery-order sweep: reruns the protocol tests of the
#                   checked build under several GPUMIP_SCHEDULE_SEED values,
#                   so the supervisor-worker exchange is exercised under
#                   fuzzed (but legal) message schedules. Divergent results
#                   or a detector-flagged deadlock fail the gate.
#   5. tidy       — clang-tidy over src/ with the repo .clang-tidy, using the
#                   compile database of the sanitize build. Skipped with a
#                   warning when clang-tidy is not installed (the check still
#                   exits 0 for this step: it is an extra gate, not a
#                   replacement for the others).
#   6. obs        — observability smoke: runs two small benches of an
#                   obs-ON Release build with a metrics export and validates
#                   the JSON against the docs/METRICS.md glossary (every
#                   exported name must be documented), then builds one bench
#                   with -DGPUMIP_OBS=OFF and asserts the hot-path metric
#                   AND trace-event name literals are absent from the binary
#                   (the macros compile to parsed-but-unevaluated no-ops).
#   6b. methods   — LP-method doc cross-check: every method name string the
#                   lp_method_name switch in src/lp/path_chooser.cpp can
#                   return must appear backticked in docs/METHODS.md, so the
#                   chooser cannot grow a backend the method contract never
#                   documents.
#   7. lint       — gpumip-lint (tools/gpumip-lint, docs/LINT.md): repo-
#                   native rules clang-tidy cannot express. R1 confines raw
#                   DeviceBuffer::as<T>() access to kernel/transfer files,
#                   R2 bans byte copies that would bypass the H2D/D2H
#                   ledger, R3 requires every throw to carry a gpumip
#                   ErrorCode, R4 checks metric-name grammar + glossary
#                   membership statically (subsumes gate 6's grep for names
#                   that never execute) and holds trace-event names to the
#                   docs/TRACING.md catalog the same way, R5 compiles every
#                   src/ header as its own translation unit, the
#                   call-graph rules R6-R9 enforce the hot-path manifest
#                   (no allocation / payload copy / blocking call reachable
#                   from a declared root without a justified waiver, every
#                   root instrumented), and the CFG/dataflow lifetime rules
#                   R10-R12 catch use-after-move, arena use-after-reset,
#                   and unbalanced raw trace spans path-sensitively. The
#                   gate first runs the tool's seeded-violation self-test,
#                   so a rule that silently stopped firing also fails the
#                   gate, and archives the --format=json report next to
#                   the gate logs.
#   8. bench      — recorded-baseline regression compare: reruns the bench
#                   suite (scripts/bench.sh --compare) and diffs the
#                   deterministic counters/gauges against the committed
#                   BENCH_baseline.json within per-family tolerances, then
#                   proves the comparator has teeth by seeding a regression
#                   (doubled H2D transfer volume) and requiring it to fail.
#   9. trace      — event-trace analyzer: gpumip-trace --self-check runs the
#                   analyzer's embedded-fixture expectations, then analyzes
#                   the committed supervised-solve trace and requires it to
#                   be non-trivial (>= 2 ranks, every cross-rank flow
#                   matched, a multi-hop critical path, positive makespan).
#   10. report    — regression attribution: gpumip-report --self-check runs
#                   the report engine's embedded known-answer fixtures, then
#                   the committed fixture pair (a baseline and a doubled-H2D
#                   regression of it) must attribute with the transfer
#                   category ranked first — proof the claim-category mapping
#                   and the delta ranking still point at the right culprit.
#
# Both build gates compile with -Werror (GPUMIP_WERROR=ON), so warnings
# promoted in the top-level CMakeLists (-Wall -Wextra -Wpedantic -Wshadow)
# are hard failures here even though normal developer builds only warn.
#
# Usage: scripts/check.sh [jobs]     (default: nproc)
set -u -o pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"
FAILURES=0

# Per-gate wall-time ledger, printed as a summary at the end of the run so
# slow gates are visible without timestamp archaeology in the logs.
GATE_SUMMARY=()
timed() {
  local gate_name="$1"
  shift
  local gate_start=$SECONDS
  "$@"
  GATE_SUMMARY+=("$(printf '%-10s %5ds' "$gate_name" $((SECONDS - gate_start)))")
}

run_gate() {
  local name="$1" build_dir="$2"
  shift 2
  echo "==> [$name] configure ($build_dir)"
  if ! cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
       -DGPUMIP_WERROR=ON "$@" >"$build_dir.configure.log" 2>&1; then
    echo "==> [$name] CONFIGURE FAILED (see $build_dir.configure.log)"
    FAILURES=$((FAILURES + 1))
    return
  fi
  echo "==> [$name] build"
  if ! cmake --build "$build_dir" -j "$JOBS" >"$build_dir.build.log" 2>&1; then
    echo "==> [$name] BUILD FAILED (see $build_dir.build.log)"
    tail -n 30 "$build_dir.build.log"
    FAILURES=$((FAILURES + 1))
    return
  fi
  echo "==> [$name] ctest"
  if ! (cd "$build_dir" && ctest --output-on-failure -j "$JOBS"); then
    echo "==> [$name] TESTS FAILED"
    FAILURES=$((FAILURES + 1))
    return
  fi
  echo "==> [$name] OK"
}

# Gate 1: sanitizers. detect_leaks needs ptrace; fall back gracefully where
# the environment forbids it (containers without CAP_SYS_PTRACE).
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"
timed sanitize run_gate sanitize build-asan -DGPUMIP_SANITIZE=ON

# Gate 2: checked mode — every GPUMIP_ASSERT / GPUMIP_VALIDATE call site in
# the solver runs live (tree, snapshot, basis residual, sparse structure,
# device ledger, message audit).
timed checked run_gate checked build-checked -DGPUMIP_CHECKED=ON

# Gate 3: ThreadSanitizer over the thread-per-rank simmpi runtime. TSan is
# incompatible with ASan, hence its own build tree. halt_on_error makes a
# detected race abort the test immediately — without it the exit status can
# be swallowed when output goes through a pipe.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"
timed tsan run_gate tsan build-tsan -DGPUMIP_SANITIZE=thread

# Gate 4: seeded schedule sweep. GPUMIP_SCHEDULE_SEED fuzzes message
# delivery order inside run_ranks (see parallel/schedule.hpp), so the same
# protocol tests now run under several distinct legal schedules. The filter
# names the order-INDEPENDENT tests: makespan/balance comparisons
# (MoreWorkersNoWorseMakespan, LoadIsDistributed) legitimately change under
# a perturbed schedule and are excluded. The dedicated 32-seed-per-strategy
# determinism sweep (test_schedule) already ran in every gate above.
schedule_gate() {
  local build_dir="build-checked"
  local filter='SimMpi|Supervisor\.(MatchesSequentialOptimum|CheckpointAndResume)|BatchedPdhg'
  if [ ! -d "$build_dir" ]; then
    echo "==> [schedule] SKIPPED: no $build_dir (checked gate did not configure)"
    return
  fi
  echo "==> [schedule] fuzzed delivery-order sweep ($build_dir)"
  local seed
  for seed in 1 42 7919 104729; do
    if ! (cd "$build_dir" && GPUMIP_SCHEDULE_SEED="$seed" \
          ctest -R "$filter" -j "$JOBS" --output-on-failure \
          >"../$build_dir.schedule-$seed.log" 2>&1); then
      echo "==> [schedule] SWEEP FAILED at seed $seed (see $build_dir.schedule-$seed.log)"
      tail -n 20 "$build_dir.schedule-$seed.log"
      FAILURES=$((FAILURES + 1))
      return
    fi
  done
  echo "==> [schedule] OK (seeds: 1 42 7919 104729)"
}
timed schedule schedule_gate

# Gate 5: clang-tidy (optional tool; the compile database comes from the
# sanitize build, which exports compile_commands.json).
tidy_gate() {
  if command -v clang-tidy >/dev/null 2>&1; then
    echo "==> [tidy] clang-tidy over src/"
    mapfile -t sources < <(find src -name '*.cpp' | sort)
    if ! clang-tidy -p build-asan --quiet "${sources[@]}"; then
      echo "==> [tidy] LINT FINDINGS"
      FAILURES=$((FAILURES + 1))
    else
      echo "==> [tidy] OK"
    fi
  else
    echo "==> [tidy] SKIPPED: clang-tidy not installed (install LLVM tools to enable this gate)"
  fi
}
timed tidy tidy_gate

# Gate 6: observability. Half (a): export metrics from two cheap benches
# (e7 covers the batching histograms, e8 the per-rank simmpi names) and
# cross-check every exported metric name against the docs/METRICS.md
# glossary, normalizing rank-indexed names to the documented rank<r> form.
# Half (b): a -DGPUMIP_OBS=OFF build of the same bench must not contain the
# hot-path metric name strings — proof the macros compiled to no-ops.
obs_gate() {
  local build_dir=build-obs off_dir=build-obs-off
  echo "==> [obs] configure+build ($build_dir, GPUMIP_OBS=ON)"
  if ! { cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
           -DGPUMIP_WERROR=ON -DGPUMIP_OBS=ON >"$build_dir.configure.log" 2>&1 &&
         cmake --build "$build_dir" -j "$JOBS" \
           --target bench_e7_batching bench_e8_scaleout >"$build_dir.build.log" 2>&1; }; then
    echo "==> [obs] BUILD FAILED (see $build_dir.*.log)"
    FAILURES=$((FAILURES + 1))
    return
  fi
  echo "==> [obs] bench smoke + glossary cross-check"
  local b
  for b in bench_e7_batching bench_e8_scaleout; do
    if ! GPUMIP_METRICS_OUT="$build_dir/$b.metrics.json" \
         "./$build_dir/bench/$b" --benchmark_filter='$^' \
         >"$build_dir/$b.out.log" 2>&1; then
      echo "==> [obs] BENCH FAILED: $b (see $build_dir/$b.out.log)"
      FAILURES=$((FAILURES + 1))
      return
    fi
  done
  if ! python3 - "$build_dir/bench_e7_batching.metrics.json" \
                 "$build_dir/bench_e8_scaleout.metrics.json" <<'PY'
import json, re, sys

glossary = open("docs/METRICS.md").read()
bad = []
for path in sys.argv[1:]:
    doc = json.load(open(path))
    if doc.get("schema") not in ("gpumip.metrics.v1", "gpumip.metrics.v2") \
            or not doc.get("enabled"):
        sys.exit(f"{path}: bad schema or observability disabled")
    names = list(doc["counters"]) + list(doc["gauges"]) + list(doc["histograms"])
    if not names:
        sys.exit(f"{path}: export contains no metrics")
    for name in names:
        # Labeled names are documented once per family in key-only form:
        # gpumip.lp.solves{method=pdhg} -> gpumip.lp.solves{method}. Legacy
        # rank-suffixed names normalize to the rank<r> placeholder.
        documented = re.sub(
            r"\{([^}]*)\}",
            lambda m: "{" + ",".join(kv.split("=", 1)[0]
                                     for kv in m.group(1).split(",")) + "}",
            name)
        documented = re.sub(r"rank\d+", "rank<r>", documented)
        if f"`{documented}`" not in glossary:
            bad.append(f"{name} (from {path})")
if bad:
    sys.exit("metrics exported but not documented in docs/METRICS.md:\n  "
             + "\n  ".join(sorted(set(bad))))
print(f"    every exported metric name is documented")
PY
  then
    echo "==> [obs] GLOSSARY CHECK FAILED"
    FAILURES=$((FAILURES + 1))
    return
  fi
  echo "==> [obs] configure+build ($off_dir, GPUMIP_OBS=OFF)"
  if ! { cmake -B "$off_dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
           -DGPUMIP_WERROR=ON -DGPUMIP_OBS=OFF >"$off_dir.configure.log" 2>&1 &&
         cmake --build "$off_dir" -j "$JOBS" \
           --target bench_e7_batching >"$off_dir.build.log" 2>&1; }; then
    echo "==> [obs] OFF-BUILD FAILED (see $off_dir.*.log)"
    FAILURES=$((FAILURES + 1))
    return
  fi
  local name
  for name in gpumip.gpu.xfer.h2d.bytes gpumip.lp.ops.refactor gpumip.lp.batch.occupancy \
              gpumip.lp.batch.wave gpumip.lp.pdhg.solve gpumip.lp.method.choice \
              gpumip.mip.cuts.round gpumip.simmpi.recv.wait \
              gpumip.lp.solves gpumip.lp.solve.seconds \
              gpumip.obs.sampler.samples gpumip.obs.sampler.dropped; do
    if grep -qa "$name" "$off_dir/bench/bench_e7_batching"; then
      echo "==> [obs] OFF build still contains metric/trace string '$name'"
      FAILURES=$((FAILURES + 1))
      return
    fi
  done
  echo "==> [obs] OK"
}
timed obs obs_gate

# Gate 6b: LP-method documentation cross-check. Parses the return-string
# literals of lp_method_name in src/lp/path_chooser.cpp (the authoritative
# name mapping the GPUMIP_LP_METHOD parser mirrors) and requires each to be
# documented — backticked — in docs/METHODS.md. Pure text analysis: no
# build, runs in milliseconds, and fails the sweep the moment someone adds
# an LpMethod enumerator without extending the method contract.
methods_gate() {
  echo "==> [methods] docs/METHODS.md covers every lp_method_name string"
  if ! python3 - <<'PY'
import re, sys

src = open("src/lp/path_chooser.cpp").read()
m = re.search(r"lp_method_name\s*\([^)]*\)[^{]*\{(.*?)\n\}", src, re.S)
if not m:
    sys.exit("src/lp/path_chooser.cpp: lp_method_name definition not found")
# One name per LpMethod case; the post-switch "unknown" fallback is
# unreachable for valid enumerators and deliberately not required.
names = re.findall(r'case\s+LpMethod::\w+:\s*return\s+"([a-z_]+)"', m.group(1))
if len(names) < 3:
    sys.exit(f"lp_method_name: expected >= 3 method names, parsed {names}")
doc = open("docs/METHODS.md").read()
missing = [n for n in names if f"`{n}`" not in doc]
if missing:
    sys.exit("method names missing from docs/METHODS.md (backticked): "
             + ", ".join(missing))
print(f"    documented: {', '.join(names)}")
PY
  then
    echo "==> [methods] DOC CHECK FAILED (see docs/METHODS.md)"
    FAILURES=$((FAILURES + 1))
    return
  fi
  echo "==> [methods] OK"
}
timed methods methods_gate

# Gate 7: gpumip-lint. A dedicated small Release tree builds just the tool
# (it has no solver dependencies, so this is cheap even from scratch). The
# self-test proves each rule R1-R4, the call-graph rules R6-R9, the
# CFG/dataflow lifetime rules R10-R12, and the protocol/determinism rules
# R13-R16 still fire on their seeded-violation fixtures and that the
# suppression round trip holds; the sweep then
# requires src/ to be clean modulo the justified entries in
# tools/gpumip-lint/suppressions.txt, with R5 compiling every header under
# src/ standalone and R6-R9 walking the hot-path manifest
# tools/gpumip-lint/hotpaths.txt. The per-file scan phase fans out over
# --jobs $JOBS worker threads (findings merge back in input order, so the
# report is thread-count independent). The sweep runs with --format=json:
# findings stay on stderr for the console, and the machine-readable
# document (schema gpumip.lint.v1, including the waived findings and the
# per-phase wall times) is archived next to the gate logs as
# build-lint.lint.json.
lint_gate() {
  local build_dir=build-lint
  echo "==> [lint] configure+build ($build_dir, gpumip-lint)"
  if ! { cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release \
           >"$build_dir.configure.log" 2>&1 &&
         cmake --build "$build_dir" -j "$JOBS" --target gpumip-lint \
           >"$build_dir.build.log" 2>&1; }; then
    echo "==> [lint] BUILD FAILED (see $build_dir.*.log)"
    FAILURES=$((FAILURES + 1))
    return
  fi
  local tool="./$build_dir/tools/gpumip-lint/gpumip-lint"
  if ! "$tool" --self-test; then
    echo "==> [lint] SELF-TEST FAILED (a rule no longer fires on its fixture)"
    FAILURES=$((FAILURES + 1))
    return
  fi
  echo "==> [lint] R1-R16 over src/ (suppressions: tools/gpumip-lint/suppressions.txt, hot paths: tools/gpumip-lint/hotpaths.txt, jobs: $JOBS)"
  mapfile -t lint_sources < <(find src -name '*.cpp' -o -name '*.hpp' | sort)
  local lint_status=0
  "$tool" --metrics-doc docs/METRICS.md --tracing-doc docs/TRACING.md \
       --suppressions tools/gpumip-lint/suppressions.txt \
       --hotpaths tools/gpumip-lint/hotpaths.txt \
       --header-check --include-dir src --compiler "${CXX:-c++}" \
       --scratch "$build_dir/lint-scratch" --format=json \
       --jobs "$JOBS" \
       "${lint_sources[@]}" >"$build_dir.lint.json" || lint_status=$?
  # Surface the analyzer's per-phase wall times from the archived JSON so
  # a slow rule family is visible without re-running by hand.
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$build_dir.lint.json" <<'PY' || true
import json, sys
s = json.load(open(sys.argv[1]))["stats"]
speedup = s["scan_serial_ms"] / s["scan_ms"] if s["scan_ms"] > 0 else 1.0
print("==> [lint] phases: scan %.1fms (%d jobs, %.1fx over serial %.1fms), "
      "token rules %.1fms, index+graph %.1fms, hotpath %.1fms, "
      "lifetime %.1fms, protocol %.1fms, determinism %.1fms "
      "(%d files, %d functions)"
      % (s["scan_ms"], s["scan_jobs"], speedup, s["scan_serial_ms"],
         s["rules_ms"], s["index_ms"], s["hotpath_ms"], s["lifetime_ms"],
         s["protocol_ms"], s["determinism_ms"], s["files"], s["functions"]))
PY
  fi
  if [ "$lint_status" -ne 0 ]; then
    echo "==> [lint] FINDINGS (annotate with justification or fix; see docs/LINT.md)"
    FAILURES=$((FAILURES + 1))
    return
  fi
  echo "==> [lint] OK (report archived: $build_dir.lint.json)"
}
timed lint lint_gate

# Gate 8: bench-regression compare. scripts/bench.sh --compare reruns the
# recorded-baseline suite and diffs the deterministic counters/gauges
# against BENCH_baseline.json (see scripts/bench_compare.py for the
# tolerance families). The gate then seeds a known regression — doubling
# every gpumip.gpu.xfer.h2d.bytes counter of the fresh run — and requires
# the comparator to reject it, so a comparator that silently stopped
# comparing also fails the gate.
bench_gate() {
  local baseline=BENCH_baseline.json current=build-bench/current.json
  if [ ! -f "$baseline" ]; then
    echo "==> [bench] FAILED: no committed $baseline (record one with scripts/bench.sh)"
    FAILURES=$((FAILURES + 1))
    return
  fi
  echo "==> [bench] rerun suite + compare against $baseline"
  if ! scripts/bench.sh --compare "$baseline" "$JOBS" >build-bench.compare.log 2>&1; then
    echo "==> [bench] REGRESSION (see build-bench.compare.log)"
    tail -n 20 build-bench.compare.log
    FAILURES=$((FAILURES + 1))
    return
  fi
  echo "==> [bench] seeded-regression drill (doubled H2D volume must be caught)"
  python3 - "$current" build-bench/tampered.json <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
seeded = 0
for m in doc["benches"].values():
    for name in m["counters"]:
        if name == "gpumip.gpu.xfer.h2d.bytes":
            m["counters"][name] *= 2
            seeded += 1
if seeded == 0:
    sys.exit("no gpumip.gpu.xfer.h2d.bytes counter to tamper with")
json.dump(doc, open(sys.argv[2], "w"))
PY
  if python3 scripts/bench_compare.py "$baseline" build-bench/tampered.json \
       >build-bench.tamper.log 2>&1; then
    echo "==> [bench] COMPARATOR HAS NO TEETH: doubled H2D volume passed the compare"
    FAILURES=$((FAILURES + 1))
    return
  fi
  # The attribution leg of the drill: gpumip-report must not just see the
  # seeded regression, it must blame the right claim category (transfer).
  echo "==> [bench] seeded-regression attribution (gpumip-report must rank transfer first)"
  if ! { cmake --build build-bench -j "$JOBS" --target gpumip-report \
           >>build-bench.build.log 2>&1 &&
         ./build-bench/tools/gpumip-report/gpumip-report \
           --attribute "$baseline" build-bench/tampered.json \
           --expect-top transfer >build-bench.attribute.log 2>&1; }; then
    echo "==> [bench] ATTRIBUTION FAILED (see build-bench.attribute.log)"
    tail -n 20 build-bench.attribute.log
    FAILURES=$((FAILURES + 1))
    return
  fi
  echo "==> [bench] OK (compare clean; seeded regression caught and attributed)"
}
timed bench bench_gate

# Gate 9: event-trace analyzer. Reuses the gate-7 Release tree (the tool is
# solver-independent and cheap to build). --self-check first proves the
# analyzer's embedded-fixture expectations (parse, flow matching, critical
# path, rank breakdowns, malformed-input rejection) still hold, then the
# committed trace of a real supervised solve must analyze as non-trivial.
trace_gate() {
  local build_dir=build-lint
  local fixture=tools/gpumip-trace/testdata/fixture_trace.json
  echo "==> [trace] build ($build_dir, gpumip-trace)"
  if ! { cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release \
           >"$build_dir.trace-configure.log" 2>&1 &&
         cmake --build "$build_dir" -j "$JOBS" --target gpumip-trace \
           >"$build_dir.trace-build.log" 2>&1; }; then
    echo "==> [trace] BUILD FAILED (see $build_dir.trace-*.log)"
    FAILURES=$((FAILURES + 1))
    return
  fi
  if ! "./$build_dir/tools/gpumip-trace/gpumip-trace" --self-check "$fixture"; then
    echo "==> [trace] ANALYZER CHECK FAILED (self-check or committed fixture trivial)"
    FAILURES=$((FAILURES + 1))
    return
  fi
  echo "==> [trace] OK"
}
timed trace trace_gate

# Gate 10: regression-attribution engine. Reuses the gate-7 Release tree
# (gpumip-report is solver-independent). --self-check proves the embedded
# known-answer fixtures (parsing, claim-category mapping, exclusions, the
# doubled-H2D ranking) still hold; then the committed fixture pair — a
# baseline and a regression of it with doubled H2D volume plus decoy moves
# on excluded metrics — must attribute with transfer ranked first.
report_gate() {
  local build_dir=build-lint
  local base=tools/gpumip-report/testdata/fixture_baseline.json
  local regr=tools/gpumip-report/testdata/fixture_regression.json
  echo "==> [report] build ($build_dir, gpumip-report)"
  if ! { cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release \
           >"$build_dir.report-configure.log" 2>&1 &&
         cmake --build "$build_dir" -j "$JOBS" --target gpumip-report \
           >"$build_dir.report-build.log" 2>&1; }; then
    echo "==> [report] BUILD FAILED (see $build_dir.report-*.log)"
    FAILURES=$((FAILURES + 1))
    return
  fi
  local tool="./$build_dir/tools/gpumip-report/gpumip-report"
  if ! "$tool" --self-check; then
    echo "==> [report] SELF-CHECK FAILED (an embedded fixture expectation broke)"
    FAILURES=$((FAILURES + 1))
    return
  fi
  echo "==> [report] committed fixture pair must attribute to transfer"
  if ! "$tool" --attribute "$base" "$regr" --expect-top transfer; then
    echo "==> [report] ATTRIBUTION FAILED (transfer not ranked first)"
    FAILURES=$((FAILURES + 1))
    return
  fi
  echo "==> [report] OK"
}
timed report report_gate

echo
echo "==> gate wall-time summary"
for gate_line in "${GATE_SUMMARY[@]}"; do
  echo "    $gate_line"
done
echo
if [ "$FAILURES" -ne 0 ]; then
  echo "check.sh: $FAILURES gate(s) failed"
  exit 1
fi
echo "check.sh: all gates passed"
