// gpumip-trace CLI — scripts/check.sh gate 9 entry point.
//
//   gpumip-trace --self-check [trace.json ...]
//   gpumip-trace trace.json ...
//
// Without --self-check: loads each trace (obs/trace.hpp export), prints the
// analysis report (critical path, per-rank busy/blocked/idle, device-lane
// overlap, cut latency). With --self-check: first runs the built-in
// known-answer fixtures, then additionally requires each given trace to be
// non-trivial (matched flows, >= 2 ranks, a cross-rank critical path) — the
// gate runs this against the committed fixture trace.
//
// Exit status: 0 clean, 1 failed self-check or trivial trace, 2 usage/IO/
// parse error.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze.hpp"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gpumip::tracetool;

  bool self_check = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-check") {
      self_check = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: gpumip-trace [--self-check] trace.json ...\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "gpumip-trace: unknown option " << arg << "\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  bool ok = true;
  if (self_check) {
    std::cout << "==> gpumip-trace self-check (known-answer fixtures)\n";
    ok = run_self_check(std::cout);
  }
  if (!self_check && paths.empty()) {
    std::cerr << "gpumip-trace: no input files (see --help)\n";
    return 2;
  }

  for (const std::string& path : paths) {
    std::string text;
    if (!read_file(path, text)) {
      std::cerr << "gpumip-trace: cannot read " << path << "\n";
      return 2;
    }
    Trace trace;
    std::string error;
    if (!parse_trace(text, trace, error)) {
      std::cerr << "gpumip-trace: " << path << ": " << error << "\n";
      return 2;
    }
    const Report report = analyze(trace);
    std::cout << "==> " << path << "\n" << format_report(report);
    if (self_check) {
      const std::string verdict = verify_nontrivial(report);
      if (verdict.empty()) {
        std::cout << "  [PASS] trace is non-trivial\n";
      } else {
        std::cout << "  [FAIL] " << verdict << "\n";
        ok = false;
      }
    }
  }
  return ok ? 0 : 1;
}
