#include "linalg/batched.hpp"

#include <cmath>

namespace gpumip::linalg {

using gpu::KernelCost;

DeviceBatch::DeviceBatch(gpu::Device& device, int count, int n, std::string label)
    : buffer_(device.alloc_doubles(static_cast<std::size_t>(count) * n * n, std::move(label))),
      count_(count),
      n_(n) {
  check_arg(count > 0 && n > 0, "DeviceBatch: count and n must be positive");
}

DeviceBatch DeviceBatch::upload(gpu::Device& device, gpu::StreamId stream,
                                const std::vector<Matrix>& mats, std::string label) {
  check_arg(!mats.empty(), "DeviceBatch::upload: empty batch");
  const int n = mats.front().rows();
  for (const Matrix& m : mats) {
    check_arg(m.rows() == n && m.cols() == n, "DeviceBatch::upload: matrices must be equal-size square");
  }
  DeviceBatch out(device, static_cast<int>(mats.size()), n, std::move(label));
  // Pack host-side, then a single H2D transfer: this is the point of the
  // batched interface (one latency charge for the whole batch).
  std::vector<double> packed(static_cast<std::size_t>(out.count_) * n * n);
  for (int i = 0; i < out.count_; ++i) {
    std::copy(mats[static_cast<std::size_t>(i)].data(),
              mats[static_cast<std::size_t>(i)].data() + static_cast<std::size_t>(n) * n,
              packed.begin() + static_cast<std::ptrdiff_t>(i) * n * n);
  }
  device.copy_h2d(stream, out.buffer_, packed.data(), packed.size() * sizeof(double));
  return out;
}

Matrix DeviceBatch::download_one(gpu::StreamId stream, int i) const {
  check_arg(i >= 0 && i < count_, "DeviceBatch::download_one: bad index");
  Matrix host(n_, n_);
  device()->copy_d2h(stream, buffer_, host.data(), static_cast<std::size_t>(n_) * n_ * sizeof(double),
                     static_cast<std::size_t>(i) * n_ * n_ * sizeof(double));
  return host;
}

std::vector<std::vector<int>> batched_getrf(gpu::StreamId stream, DeviceBatch& batch,
                                            std::vector<int>* singular) {
  check_arg(batch.valid(), "batched_getrf: invalid batch");
  gpu::Device& device = *batch.device();
  const int n = batch.n();
  const int count = batch.count();
  std::vector<std::vector<int>> pivots(static_cast<std::size_t>(count));
  const double flops = count * (2.0 / 3.0) * std::pow(static_cast<double>(n), 3.0);
  KernelCost cost = KernelCost::dense(flops, static_cast<double>(count) * n * n);
  // One launch covering the whole batch: occupancy scales with total work.
  cost.occupancy = occupancy_for_elements(static_cast<std::size_t>(count) * n * n);
  device.launch(stream, cost, [&] {
    for (int b = 0; b < count; ++b) {
      double* d = batch.matrix_data(b);
      auto at = [&](int r, int c) -> double& { return d[static_cast<std::size_t>(c) * n + r]; };
      auto& piv = pivots[static_cast<std::size_t>(b)];
      piv.assign(static_cast<std::size_t>(n), 0);
      bool bad = false;
      for (int k = 0; k < n && !bad; ++k) {
        int pivot_row = k;
        double pivot_abs = std::fabs(at(k, k));
        for (int i = k + 1; i < n; ++i) {
          const double v = std::fabs(at(i, k));
          if (v > pivot_abs) {
            pivot_abs = v;
            pivot_row = i;
          }
        }
        if (pivot_abs < 1e-12) {
          bad = true;
          break;
        }
        piv[static_cast<std::size_t>(k)] = pivot_row;
        if (pivot_row != k) {
          for (int c = 0; c < n; ++c) std::swap(at(k, c), at(pivot_row, c));
        }
        const double inv = 1.0 / at(k, k);
        for (int i = k + 1; i < n; ++i) {
          const double mult = at(i, k) * inv;
          at(i, k) = mult;
          if (mult == 0.0) continue;
          for (int c = k + 1; c < n; ++c) at(i, c) -= mult * at(k, c);
        }
      }
      if (bad) {
        piv.clear();
        if (singular != nullptr) singular->push_back(b);
      }
    }
  });
  return pivots;
}

void batched_getrs(gpu::StreamId stream, const DeviceBatch& lu,
                   const std::vector<std::vector<int>>& pivots, DeviceVector& rhs) {
  const int n = lu.n();
  const int count = lu.count();
  check_arg(static_cast<int>(pivots.size()) == count, "batched_getrs: pivot count mismatch");
  check_arg(rhs.size() == n * count, "batched_getrs: rhs size mismatch");
  gpu::Device& device = *lu.device();
  KernelCost cost = KernelCost::dense(count * 2.0 * static_cast<double>(n) * n,
                                      static_cast<double>(count) * (n * n + n));
  cost.occupancy = occupancy_for_elements(static_cast<std::size_t>(count) * n * n);
  device.launch(stream, cost, [&] {
    for (int b = 0; b < count; ++b) {
      const auto& piv = pivots[static_cast<std::size_t>(b)];
      if (piv.empty()) continue;  // singular member: skipped
      const double* d = lu.matrix_data(b);
      auto at = [&](int r, int c) { return d[static_cast<std::size_t>(c) * n + r]; };
      double* x = rhs.span().data() + static_cast<std::size_t>(b) * n;
      for (int k = 0; k < n; ++k) {
        const int p = piv[static_cast<std::size_t>(k)];
        if (p != k) std::swap(x[k], x[p]);
      }
      for (int i = 0; i < n; ++i) {
        double sum = x[i];
        for (int j = 0; j < i; ++j) sum -= at(i, j) * x[j];
        x[i] = sum;
      }
      for (int i = n - 1; i >= 0; --i) {
        double sum = x[i];
        for (int j = i + 1; j < n; ++j) sum -= at(i, j) * x[j];
        x[i] = sum / at(i, i);
      }
    }
  });
}

void batched_gemv(gpu::StreamId stream, const DeviceBatch& batch, const DeviceVector& x,
                  DeviceVector& y) {
  const int n = batch.n();
  const int count = batch.count();
  check_arg(x.size() == n * count && y.size() == n * count, "batched_gemv: size mismatch");
  gpu::Device& device = *batch.device();
  KernelCost cost = KernelCost::dense(count * 2.0 * static_cast<double>(n) * n,
                                      static_cast<double>(count) * (n * n + 2 * n));
  cost.occupancy = occupancy_for_elements(static_cast<std::size_t>(count) * n * n);
  device.launch(stream, cost, [&] {
    for (int b = 0; b < count; ++b) {
      const double* d = batch.matrix_data(b);
      const double* xb = x.span().data() + static_cast<std::size_t>(b) * n;
      double* yb = y.span().data() + static_cast<std::size_t>(b) * n;
      for (int r = 0; r < n; ++r) yb[r] = 0.0;
      for (int c = 0; c < n; ++c) {
        const double xc = xb[c];
        if (xc == 0.0) continue;
        const double* col = d + static_cast<std::size_t>(c) * n;
        for (int r = 0; r < n; ++r) yb[r] += xc * col[r];
      }
    }
  });
}

}  // namespace gpumip::linalg
