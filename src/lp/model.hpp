// User-facing linear program model: columns with bounds and objective,
// rows with (possibly ranged) activity bounds, sparse coefficients.
#pragma once

#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "sparse/formats.hpp"

namespace gpumip::lp {

enum class Sense { Minimize, Maximize };

constexpr double kInf = std::numeric_limits<double>::infinity();

struct ColumnDef {
  double obj = 0.0;
  double lb = 0.0;
  double ub = kInf;
  std::string name;
};

struct RowDef {
  double lb = -kInf;  ///< lower activity bound
  double ub = kInf;   ///< upper activity bound (lb == ub -> equality)
  std::string name;
};

/// A (row, coefficient) pair for convenience row builders.
using Term = std::pair<int, double>;

class LpModel {
 public:
  Sense sense() const noexcept { return sense_; }
  void set_sense(Sense sense) noexcept { sense_ = sense; }

  int num_cols() const noexcept { return static_cast<int>(cols_.size()); }
  int num_rows() const noexcept { return static_cast<int>(rows_.size()); }
  int num_entries() const noexcept { return static_cast<int>(entries_.size()); }

  /// Adds a column; returns its index.
  int add_col(double obj, double lb = 0.0, double ub = kInf, std::string name = "");
  /// Adds an empty row with activity bounds; returns its index.
  int add_row(double lb, double ub, std::string name = "");

  /// Appends a coefficient (duplicates are summed at compression time).
  void set_coef(int row, int col, double value);

  // Convenience whole-row builders (terms are (col, coef)).
  int add_row_le(const std::vector<Term>& terms, double rhs, std::string name = "");
  int add_row_ge(const std::vector<Term>& terms, double rhs, std::string name = "");
  int add_row_eq(const std::vector<Term>& terms, double rhs, std::string name = "");
  int add_row_range(const std::vector<Term>& terms, double lb, double ub, std::string name = "");

  const ColumnDef& col(int j) const { return cols_[static_cast<std::size_t>(j)]; }
  ColumnDef& col(int j) { return cols_[static_cast<std::size_t>(j)]; }
  const RowDef& row(int i) const { return rows_[static_cast<std::size_t>(i)]; }
  RowDef& row(int i) { return rows_[static_cast<std::size_t>(i)]; }

  const std::vector<sparse::Triplet>& entries() const noexcept { return entries_; }

  /// Compressed row-wise matrix of the model.
  sparse::Csr matrix() const;

  /// Fraction of nonzero cells.
  double density() const;

  /// Objective value of a point (in the model's own sense).
  double objective_value(std::span<const double> x) const;

  /// Throws on inconsistent bounds (lb > ub) or out-of-range indices.
  void validate() const;

 private:
  Sense sense_ = Sense::Minimize;
  std::vector<ColumnDef> cols_;
  std::vector<RowDef> rows_;
  std::vector<sparse::Triplet> entries_;
};

}  // namespace gpumip::lp
