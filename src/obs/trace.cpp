#include "obs/trace.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>

#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "support/timer.hpp"

namespace gpumip::obs::trace {

namespace {

/// One thread's event storage. Single writer (the owning thread); readers
/// (snapshot/export) run only at quiescence. `head` counts every event
/// ever written through this ring, so the retained window is the last
/// kRingCapacity of them and `head - kRingCapacity` were overwritten.
struct Ring {
  std::vector<TraceEvent> buf;
  std::uint64_t head = 0;
};

/// Process-wide ring pool. Rings are never destroyed; a thread returns its
/// ring to the free list on exit (the handoff mutex orders the old
/// owner's writes before the new owner's) and the retained events stay
/// readable for post-join export. Creation order is stable, so snapshots
/// are deterministic for a deterministic schedule.
struct Store {
  std::mutex mutex;
  std::vector<std::unique_ptr<Ring>> rings;
  std::vector<Ring*> free_rings;
  std::atomic<std::uint32_t> next_tid{1};
  std::atomic<std::uint64_t> next_run{1};
  std::atomic<std::uint64_t> dropped{0};
};

Store& store() {
  static Store instance;
  return instance;
}

/// Wall-clock epoch shared by every unbound thread, so their timestamps
/// live on one comparable timeline.
double wall_seconds() {
  static const WallTimer epoch;
  return epoch.elapsed();
}

struct ThreadState {
  Ring* ring = nullptr;
  std::uint32_t tid = 0;
  int rank = -1;
  const double* sim_clock = nullptr;
  /// Open-span names, so end() can stamp the matching name without the
  /// caller restating it (obs::Span destructors use this form).
  std::vector<std::array<char, TraceEvent::kNameCapacity + 1>> span_stack;

  ~ThreadState() {
    if (ring == nullptr) return;
    Store& s = store();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.free_rings.push_back(ring);
  }
};

ThreadState& tls() {
  thread_local ThreadState state;
  return state;
}

void copy_name(char* dst, std::string_view name) {
  const std::size_t n = std::min(name.size(), TraceEvent::kNameCapacity);
  std::copy_n(name.data(), n, dst);
  dst[n] = '\0';
}

/// Reserves the next slot of the calling thread's ring, acquiring a ring
/// from the pool on first use and counting the overwritten event when the
/// ring has wrapped.
TraceEvent& reserve(ThreadState& t) {
  if (t.ring == nullptr) {
    Store& s = store();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.free_rings.empty()) {
      s.rings.push_back(std::make_unique<Ring>());
      t.ring = s.rings.back().get();
      t.ring->buf.resize(kRingCapacity);
    } else {
      t.ring = s.free_rings.back();
      s.free_rings.pop_back();
    }
    t.tid = s.next_tid.fetch_add(1, std::memory_order_relaxed);
  }
  Ring& r = *t.ring;
  if (r.head >= kRingCapacity) {
    store().dropped.fetch_add(1, std::memory_order_relaxed);
#ifdef GPUMIP_OBS_ENABLED
    static Counter& drop_counter = obs::counter("gpumip.obs.trace.dropped");
    drop_counter.add(1);
#endif
  }
  TraceEvent& ev = r.buf[static_cast<std::size_t>(r.head % kRingCapacity)];
  ++r.head;
  return ev;
}

/// Records one event stamped with the thread's binding and current clock
/// (simulated when a rank clock is bound, wall otherwise).
void emit(EventKind kind, std::string_view name, std::uint64_t flow, std::uint64_t arg) {
  ThreadState& t = tls();
  TraceEvent& ev = reserve(t);
  copy_name(ev.name, name);
  ev.kind = kind;
  ev.lane = Lane::kCpu;
  ev.rank = static_cast<std::int16_t>(t.rank);
  ev.tid = t.tid;
  if (t.sim_clock != nullptr) {
    ev.sim_time = true;
    ev.ts = *t.sim_clock;
  } else {
    ev.sim_time = false;
    ev.ts = wall_seconds();
  }
  ev.dur = 0.0;
  ev.flow = flow;
  ev.arg = arg;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

void begin(std::string_view name, std::uint64_t arg) {
  ThreadState& t = tls();
  auto& slot = t.span_stack.emplace_back();
  copy_name(slot.data(), name);
  emit(EventKind::kBegin, name, 0, arg);
}

void end() {
  ThreadState& t = tls();
  if (t.span_stack.empty()) {
    emit(EventKind::kEnd, "unbalanced", 0, 0);
    return;
  }
  const auto top = t.span_stack.back();
  t.span_stack.pop_back();
  emit(EventKind::kEnd, std::string_view(top.data()), 0, 0);
}

void end(std::string_view name) {
  ThreadState& t = tls();
  if (!t.span_stack.empty()) t.span_stack.pop_back();
  emit(EventKind::kEnd, name, 0, 0);
}

void instant(std::string_view name, std::uint64_t arg) {
  emit(EventKind::kInstant, name, 0, arg);
}

void complete(std::string_view name, Lane lane, double sim_start, double duration,
              std::uint64_t arg) {
  ThreadState& t = tls();
  TraceEvent& ev = reserve(t);
  copy_name(ev.name, name);
  ev.kind = EventKind::kComplete;
  ev.lane = lane;
  ev.sim_time = true;  // explicit-interval events always live on the sim clock
  ev.rank = static_cast<std::int16_t>(t.rank);
  ev.tid = t.tid;
  ev.ts = sim_start;
  ev.dur = duration;
  ev.flow = 0;
  ev.arg = arg;
}

void flow_begin(std::string_view name, std::uint64_t id) {
  emit(EventKind::kFlowStart, name, id, 0);
}

void flow_end(std::string_view name, std::uint64_t id) {
  emit(EventKind::kFlowEnd, name, id, 0);
}

std::uint64_t flow_key(std::uint64_t run, int source, int dest, std::uint64_t seq) noexcept {
  // splitmix64 over the packed tuple: uniqueness within a run is exact
  // (distinct (source,dest,seq) pack distinctly below 2^40-scale worlds);
  // the mix spreads ids from successive runs apart.
  std::uint64_t z = (run << 32) ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(source))
                                   << 48) ^
                    (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dest)) << 40) ^ seq;
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t next_run_id() noexcept {
  return store().next_run.fetch_add(1, std::memory_order_relaxed);
}

RankBinding::RankBinding(int rank, const double* sim_clock) noexcept
    : prev_rank_(tls().rank), prev_clock_(tls().sim_clock) {
  ThreadState& t = tls();
  t.rank = rank;
  t.sim_clock = sim_clock;
}

RankBinding::~RankBinding() {
  ThreadState& t = tls();
  t.rank = prev_rank_;
  t.sim_clock = prev_clock_;
}

int bound_rank() noexcept { return tls().rank; }

std::vector<TraceEvent> snapshot() {
  Store& s = store();
  std::lock_guard<std::mutex> lock(s.mutex);
  std::vector<TraceEvent> out;
  for (const auto& ring : s.rings) {
    const std::uint64_t first = ring->head > kRingCapacity ? ring->head - kRingCapacity : 0;
    for (std::uint64_t i = first; i < ring->head; ++i) {
      out.push_back(ring->buf[static_cast<std::size_t>(i % kRingCapacity)]);
    }
  }
  return out;
}

std::uint64_t dropped() noexcept { return store().dropped.load(std::memory_order_relaxed); }

void reset() {
  Store& s = store();
  std::lock_guard<std::mutex> lock(s.mutex);
  for (const auto& ring : s.rings) ring->head = 0;
  s.dropped.store(0, std::memory_order_relaxed);
}

namespace {

/// Exported Chrome trace tid. Sim-time events are grouped into one row per
/// (rank, lane) — rank -1 (the device driven from an unbound thread) gets
/// the lane rows 0..3, rank r gets 4(r+1)..4(r+1)+3 — so every rank is a
/// stable labelled track regardless of which OS thread ran it. Wall-time
/// events keep their recording thread id (offset so the two pid spaces
/// cannot collide visually).
long exported_tid(const TraceEvent& ev) {
  if (ev.sim_time) {
    return (static_cast<long>(ev.rank) + 1) * 4 + static_cast<long>(ev.lane);
  }
  return 1000 + static_cast<long>(ev.tid);
}

constexpr int kSimPid = 1;
constexpr int kWallPid = 2;

const char* phase_of(EventKind kind) {
  switch (kind) {
    case EventKind::kBegin: return "B";
    case EventKind::kEnd: return "E";
    case EventKind::kInstant: return "i";
    case EventKind::kComplete: return "X";
    case EventKind::kFlowStart: return "s";
    case EventKind::kFlowEnd: return "f";
  }
  return "i";
}

const char* lane_name(Lane lane) {
  switch (lane) {
    case Lane::kCpu: return "cpu";
    case Lane::kH2D: return "h2d";
    case Lane::kD2H: return "d2h";
    case Lane::kKernel: return "kernel";
  }
  return "cpu";
}

}  // namespace

std::string to_json() {
  std::vector<TraceEvent> events = snapshot();
  // Stable sort: per-thread recording order is preserved within equal
  // timestamps (so nested B/E pairs at the same sim instant stay nested).
  std::stable_sort(events.begin(), events.end(), [](const TraceEvent& a, const TraceEvent& b) {
    const int pa = a.sim_time ? kSimPid : kWallPid;
    const int pb = b.sim_time ? kSimPid : kWallPid;
    if (pa != pb) return pa < pb;
    const long ta = exported_tid(a);
    const long tb = exported_tid(b);
    if (ta != tb) return ta < tb;
    return a.ts < b.ts;
  });

  std::ostringstream out;
  out << "{\n\"schema\": \"gpumip.trace.v1\",\n";
  out << "\"displayTimeUnit\": \"ms\",\n";
  out << "\"otherData\": {\"dropped\": " << dropped() << "},\n";
  out << "\"traceEvents\": [\n";
  bool first = true;
  auto emit_meta = [&](int pid, long tid, const char* key, const std::string& value) {
    out << (first ? "" : ",\n") << R"({"ph":"M","pid":)" << pid << R"(,"tid":)" << tid
        << R"(,"name":")" << key << R"(","args":{"name":")" << json_escape(value) << "\"}}";
    first = false;
  };
  emit_meta(kSimPid, 0, "process_name", "simulated time");
  emit_meta(kWallPid, 0, "process_name", "wall clock");
  // Label every sim track that actually carries events.
  std::vector<long> seen_tids;
  for (const TraceEvent& ev : events) {
    if (!ev.sim_time) continue;
    const long tid = exported_tid(ev);
    if (std::find(seen_tids.begin(), seen_tids.end(), tid) != seen_tids.end()) continue;
    seen_tids.push_back(tid);
    std::string label = ev.rank < 0 ? std::string("device ") + lane_name(ev.lane)
                                    : "rank " + std::to_string(ev.rank) +
                                          (ev.lane == Lane::kCpu
                                               ? std::string()
                                               : std::string(" ") + lane_name(ev.lane));
    emit_meta(kSimPid, tid, "thread_name", label);
  }

  for (const TraceEvent& ev : events) {
    const int pid = ev.sim_time ? kSimPid : kWallPid;
    out << (first ? "" : ",\n");
    first = false;
    out << R"({"name":")" << json_escape(ev.name_view()) << R"(","ph":")" << phase_of(ev.kind)
        << R"(","ts":)" << json_number(ev.ts * 1e6) << R"(,"pid":)" << pid << R"(,"tid":)"
        << exported_tid(ev);
    if (ev.kind == EventKind::kComplete) out << R"(,"dur":)" << json_number(ev.dur * 1e6);
    if (ev.kind == EventKind::kInstant) out << R"(,"s":"t")";
    if (ev.kind == EventKind::kFlowStart || ev.kind == EventKind::kFlowEnd) {
      char idbuf[24];
      std::snprintf(idbuf, sizeof(idbuf), "0x%016llx",
                    static_cast<unsigned long long>(ev.flow));
      out << R"(,"cat":"gpumip.flow","id":")" << idbuf << '"';
      if (ev.kind == EventKind::kFlowEnd) out << R"(,"bp":"e")";
    }
    out << R"(,"args":{"rank":)" << ev.rank << R"(,"lane":")" << lane_name(ev.lane)
        << R"(","arg":)" << ev.arg << "}}";
  }
  out << "\n]\n}\n";
  return out.str();
}

void export_json(const std::string& path) {
  const std::string body = to_json();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw Error(ErrorCode::kIoError, "trace export: cannot open '" + path + "' for writing");
  }
  out << body;
  out.flush();
  if (!out) {
    throw Error(ErrorCode::kIoError, "trace export: write to '" + path + "' failed");
  }
}

std::string export_if_requested() {
  const char* path = std::getenv("GPUMIP_TRACE_OUT");  // NOLINT(concurrency-mt-unsafe)
  if (path == nullptr || *path == '\0') return "";
  export_json(path);
  return path;
}

}  // namespace gpumip::obs::trace
