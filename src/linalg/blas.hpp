// Host reference BLAS-1/2/3 kernels.
//
// These are the numerical bodies behind the device-priced wrappers in
// device_blas.hpp; they are also used directly wherever the computation is
// attributed to the CPU (hybrid strategy, sparse setup stages).
#pragma once

#include <span>

#include "linalg/matrix.hpp"

namespace gpumip::linalg {

// ----- BLAS-1 -----
double dot(std::span<const double> x, std::span<const double> y);
double nrm2(std::span<const double> x);
double asum(std::span<const double> x);
/// index of max |x_i|; -1 for empty
int iamax(std::span<const double> x);
void axpy(double alpha, std::span<const double> x, std::span<double> y);
void scal(double alpha, std::span<double> x);

// ----- BLAS-2 -----
/// y = alpha * A x + beta * y
void gemv(double alpha, const Matrix& a, std::span<const double> x, double beta,
          std::span<double> y);
/// y = alpha * Aᵀ x + beta * y
void gemv_t(double alpha, const Matrix& a, std::span<const double> x, double beta,
            std::span<double> y);
/// A += alpha * x yᵀ  (rank-1 update, the paper's core reuse primitive)
void ger(double alpha, std::span<const double> x, std::span<const double> y, Matrix& a);

// ----- BLAS-3 -----
/// C = alpha * A B + beta * C
void gemm(double alpha, const Matrix& a, const Matrix& b, double beta, Matrix& c);

// ----- triangular solves -----
/// Solve L x = b (unit or non-unit lower triangular), in place on b.
void trsv_lower(const Matrix& l, std::span<double> b, bool unit_diagonal);
/// Solve U x = b (upper triangular), in place on b.
void trsv_upper(const Matrix& u, std::span<double> b);
/// Solve Lᵀ x = b, in place.
void trsv_lower_t(const Matrix& l, std::span<double> b, bool unit_diagonal);
/// Solve Uᵀ x = b, in place.
void trsv_upper_t(const Matrix& u, std::span<double> b);

}  // namespace gpumip::linalg
