// Supervisor<->worker message auditor for the simmpi runtime.
//
// Every subproblem the supervisor ships is registered under a fresh
// tracking id; the worker acknowledges delivery and the supervisor marks
// completion when the matching result returns. At shutdown, finalize()
// proves no subproblem was lost (shipped but never completed) or
// double-delivered (two workers evaluated the same assignment) — the two
// failure modes that silently corrupt a parallel search: a lost node breaks
// snapshot coverage/optimality, a duplicated node double-counts work and
// can double-apply frontier returns.
//
// Thread-safe: ranks run as threads in simmpi, and all record calls take
// the auditor mutex.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace gpumip::check {

class MessageAuditor {
 public:
  /// Registers a subproblem shipped to `dest`; returns its tracking id.
  std::uint64_t shipped(int dest);

  /// Records delivery of `id` at `rank`. Delivery of an unknown id or a
  /// second delivery of the same id is recorded as an anomaly (reported by
  /// finalize(), not thrown here: record runs on worker threads).
  void delivered(std::uint64_t id, int rank);

  /// Records that the result for `id` arrived back at the supervisor.
  void completed(std::uint64_t id);

  // -- shutdown audit ------------------------------------------------------

  /// Number of subproblems shipped but not (yet) completed.
  long in_flight() const;
  /// Number of recorded anomalies (double/unknown deliveries, duplicate or
  /// unknown completions).
  long anomalies() const;
  std::uint64_t total_shipped() const;

  /// Human-readable description of everything wrong, empty when clean.
  std::string report() const;

  /// Throws Error(kInternal) listing lost / double-delivered subproblems;
  /// no-op when the ledger is clean. Call after run_ranks() returns.
  void finalize() const;

 private:
  struct Entry {
    int dest = -1;
    int deliveries = 0;
    int completions = 0;
  };

  mutable std::mutex mutex_;
  // Ordered by tracking id so report()/finalize() list lost or duplicated
  // subproblems deterministically — the audit text is part of the
  // replay-identical diagnostic surface (gpumip-lint R15).
  std::map<std::uint64_t, Entry> entries_;
  std::uint64_t next_id_ = 1;
  std::vector<std::string> anomalies_;
};

}  // namespace gpumip::check
