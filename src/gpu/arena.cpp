#include "gpu/arena.hpp"

#include <algorithm>
#include <utility>

#include "obs/obs.hpp"
#include "support/assert.hpp"

namespace gpumip::gpu {

namespace {
std::size_t align_up(std::size_t bytes) {
  return DeviceArena::aligned_size(bytes);
}
}  // namespace

DeviceArena::DeviceArena(Device& device, std::string label)
    : device_(&device), label_(std::move(label)) {}

void DeviceArena::reserve(std::size_t bytes) {
  check_arg(used_ == 0, "DeviceArena::reserve: outstanding blocks (reset first)");
  if (bytes <= capacity_ && slabs_.size() <= 1) return;
  const std::size_t want = std::max(bytes, capacity_);
  release();
  grow(want);
}

DeviceArena::Block DeviceArena::allot(std::size_t bytes) {
  const std::size_t need = align_up(std::max<std::size_t>(bytes, 1));
  // Advance to the first slab with room; slabs are bump-only, so earlier
  // slabs never regain space until reset().
  while (cursor_slab_ < slabs_.size() &&
         cursor_offset_ + need > slabs_[cursor_slab_].size_bytes()) {
    ++cursor_slab_;
    cursor_offset_ = 0;
  }
  if (cursor_slab_ >= slabs_.size()) {
    grow(need);
  } else {
    GPUMIP_OBS_ADD("gpumip.gpu.arena.reuse_bytes", need);
  }
  Block block;
  block.slab = &slabs_[cursor_slab_];
  block.offset = cursor_offset_;
  block.bytes = bytes;
  cursor_offset_ += need;
  used_ += need;
  high_water_ = std::max(high_water_, used_);
  return block;
}

void DeviceArena::reset() noexcept {
  cursor_slab_ = 0;
  cursor_offset_ = 0;
  used_ = 0;
}

void DeviceArena::release() noexcept {
  slabs_.clear();
  cursor_slab_ = 0;
  cursor_offset_ = 0;
  capacity_ = 0;
  used_ = 0;
}

void DeviceArena::grow(std::size_t min_bytes) {
  // Geometric growth bounds the number of real device allocations at
  // O(log total) over the arena's lifetime; a reserve() after reset()
  // coalesces back to one slab.
  const std::size_t slab_bytes = std::max(align_up(min_bytes), capacity_);
  GPUMIP_OBS_COUNT("gpumip.gpu.arena.grows");
  GPUMIP_OBS_ADD("gpumip.gpu.arena.slab_bytes", slab_bytes);
  // gpumip-lint: hot-alloc(arena capacity growth: one device allocation amortized over every block the slab later serves)
  slabs_.push_back(device_->alloc(slab_bytes, label_ + ".slab"));
  cursor_slab_ = slabs_.size() - 1;
  cursor_offset_ = 0;
  capacity_ += slab_bytes;
}

}  // namespace gpumip::gpu
