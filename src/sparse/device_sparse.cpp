#include "sparse/device_sparse.hpp"

#include <algorithm>

namespace gpumip::sparse {

using gpu::KernelCost;

DeviceCsr DeviceCsr::upload(gpu::Device& device, gpu::StreamId stream, const Csr& host,
                            std::string label) {
  DeviceCsr out;
  out.rows_ = host.rows;
  out.cols_ = host.cols;
  out.nnz_ = host.nnz();
  const RowStats stats = row_stats(host);
  // Irregular row lengths -> divergent warps. cv of 0 (perfectly regular)
  // still pays some divergence for the gather pattern of col_index.
  out.divergence_ = std::clamp(0.3 + 0.5 * stats.cv, 0.0, 1.0);
  out.row_start_ = device.alloc(host.row_start.size() * sizeof(int), label + ".rowptr");
  out.col_index_ = device.alloc(std::max<std::size_t>(1, host.col_index.size()) * sizeof(int),
                                label + ".colidx");
  out.values_ = device.alloc(std::max<std::size_t>(1, host.values.size()) * sizeof(double),
                             label + ".values");
  device.copy_h2d(stream, out.row_start_, host.row_start.data(),
                  host.row_start.size() * sizeof(int));
  if (!host.col_index.empty()) {
    device.copy_h2d(stream, out.col_index_, host.col_index.data(),
                    host.col_index.size() * sizeof(int));
    device.copy_h2d(stream, out.values_, host.values.data(), host.values.size() * sizeof(double));
  }
  return out;
}

Csr DeviceCsr::download(gpu::StreamId stream) const {
  Csr host;
  host.rows = rows_;
  host.cols = cols_;
  host.row_start.resize(static_cast<std::size_t>(rows_) + 1);
  host.col_index.resize(static_cast<std::size_t>(nnz_));
  host.values.resize(static_cast<std::size_t>(nnz_));
  device()->copy_d2h(stream, row_start_, host.row_start.data(),
                     host.row_start.size() * sizeof(int));
  if (nnz_ > 0) {
    device()->copy_d2h(stream, col_index_, host.col_index.data(),
                       host.col_index.size() * sizeof(int));
    device()->copy_d2h(stream, values_, host.values.data(), host.values.size() * sizeof(double));
  }
  return host;
}

namespace {

Csr view_as_csr(const DeviceCsr& a) {
  // Zero-copy "view" for the kernel body: wraps the device-side arrays in a
  // host Csr so the reference kernels can run on them.
  Csr v;
  v.rows = a.rows();
  v.cols = a.cols();
  v.row_start.assign(a.row_start().begin(), a.row_start().end());
  v.col_index.assign(a.col_index().begin(), a.col_index().begin() + a.nnz());
  v.values.assign(a.values().begin(), a.values().begin() + a.nnz());
  return v;
}

KernelCost spmv_cost(const DeviceCsr& a) {
  KernelCost cost = KernelCost::sparse_irregular(2.0 * a.nnz(),
                                                 static_cast<double>(a.nnz()) * 1.5 + a.rows(),
                                                 a.divergence());
  cost.occupancy = linalg::occupancy_for_elements(static_cast<std::size_t>(a.nnz()));
  return cost;
}

}  // namespace

void dev_spmv(gpu::StreamId stream, double alpha, const DeviceCsr& a,
              const linalg::DeviceVector& x, double beta, linalg::DeviceVector& y) {
  check_arg(x.size() == a.cols() && y.size() == a.rows(), "dev_spmv: shape mismatch");
  a.device()->launch(stream, spmv_cost(a), [&, alpha, beta] {
    const Csr v = view_as_csr(a);
    spmv(alpha, v, x.span(), beta, y.span());
  });
}

void dev_spmv_t(gpu::StreamId stream, double alpha, const DeviceCsr& a,
                const linalg::DeviceVector& x, double beta, linalg::DeviceVector& y) {
  check_arg(x.size() == a.rows() && y.size() == a.cols(), "dev_spmv_t: shape mismatch");
  a.device()->launch(stream, spmv_cost(a), [&, alpha, beta] {
    const Csr v = view_as_csr(a);
    spmv_t(alpha, v, x.span(), beta, y.span());
  });
}

}  // namespace gpumip::sparse
