#include "sparse/ops.hpp"

#include <algorithm>
#include <cmath>

namespace gpumip::sparse {

void spmv(double alpha, const Csr& a, std::span<const double> x, double beta,
          std::span<double> y) {
  check_arg(static_cast<int>(x.size()) == a.cols, "spmv: x size mismatch");
  check_arg(static_cast<int>(y.size()) == a.rows, "spmv: y size mismatch");
  for (int r = 0; r < a.rows; ++r) {
    double sum = 0.0;
    for (int k = a.row_start[static_cast<std::size_t>(r)];
         k < a.row_start[static_cast<std::size_t>(r) + 1]; ++k) {
      sum += a.values[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(a.col_index[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(r)] = alpha * sum + beta * y[static_cast<std::size_t>(r)];
  }
}

void spmv_t(double alpha, const Csr& a, std::span<const double> x, double beta,
            std::span<double> y) {
  check_arg(static_cast<int>(x.size()) == a.rows, "spmv_t: x size mismatch");
  check_arg(static_cast<int>(y.size()) == a.cols, "spmv_t: y size mismatch");
  for (double& v : y) v *= beta;
  for (int r = 0; r < a.rows; ++r) {
    const double xr = alpha * x[static_cast<std::size_t>(r)];
    if (xr == 0.0) continue;
    for (int k = a.row_start[static_cast<std::size_t>(r)];
         k < a.row_start[static_cast<std::size_t>(r) + 1]; ++k) {
      y[static_cast<std::size_t>(a.col_index[static_cast<std::size_t>(k)])] +=
          xr * a.values[static_cast<std::size_t>(k)];
    }
  }
}

void spmm(const Csr& a, const linalg::Matrix& b, linalg::Matrix& c) {
  check_arg(a.cols == b.rows(), "spmm: inner dimension mismatch");
  check_arg(c.rows() == a.rows && c.cols() == b.cols(), "spmm: output shape mismatch");
  for (int j = 0; j < b.cols(); ++j) {
    auto bj = b.col(j);
    auto cj = c.col(j);
    spmv(1.0, a, bj, 0.0, cj);
  }
}

double column_dot(const Csc& a, int j, std::span<const double> x) {
  check_arg(j >= 0 && j < a.cols, "column_dot: bad column");
  check_arg(static_cast<int>(x.size()) == a.rows, "column_dot: size mismatch");
  double sum = 0.0;
  for (int k = a.col_start[static_cast<std::size_t>(j)];
       k < a.col_start[static_cast<std::size_t>(j) + 1]; ++k) {
    sum += a.values[static_cast<std::size_t>(k)] *
           x[static_cast<std::size_t>(a.row_index[static_cast<std::size_t>(k)])];
  }
  return sum;
}

RowStats row_stats(const Csr& a) {
  RowStats stats;
  if (a.rows == 0) return stats;
  double sum = 0.0, sum_sq = 0.0;
  for (int r = 0; r < a.rows; ++r) {
    const double len = a.row_start[static_cast<std::size_t>(r) + 1] -
                       a.row_start[static_cast<std::size_t>(r)];
    sum += len;
    sum_sq += len * len;
    stats.max = std::max(stats.max, len);
  }
  stats.mean = sum / a.rows;
  const double var = std::max(0.0, sum_sq / a.rows - stats.mean * stats.mean);
  stats.cv = stats.mean > 0 ? std::sqrt(var) / stats.mean : 0.0;
  return stats;
}

}  // namespace gpumip::sparse
