// gpumip-lint declaration indexer: finds every function *definition* in the
// scanned sources and records its name, spelled qualification, signature
// extent, and brace-matched body extent.
//
// This is deliberately a token-level approximation, like the rest of the
// tool (no libclang): a definition is an identifier (optionally qualified
// with `A::B::`) followed by a balanced parameter list and then — after
// cv/ref/noexcept/trailing-return/requires/ctor-initializer tokens — an
// opening brace. Lambdas are NOT indexed: their bodies nest inside the
// enclosing indexed function's extent, so call sites inside a lambda are
// attributed to the function that owns the lambda. That is exactly the
// attribution the hot-path rules want (the supervisor protocol lives in a
// lambda inside run_supervised).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace gpumip::lint {

/// One indexed function definition.
struct FunctionDecl {
  std::string name;       ///< unqualified: "solve"
  std::string qualified;  ///< as spelled: "SimplexSolver::solve"; == name when unqualified
  int file_index = -1;    ///< into the scanned-file array given to index_functions
  int line = 0;           ///< 1-based line of the name
  std::size_t name_begin = 0;    ///< offset of the (qualified) name's first char
  std::size_t ret_begin = 0;     ///< heuristic start of the return-type text
  std::size_t params_begin = 0;  ///< offset of '('
  std::size_t params_end = 0;    ///< offset of the matching ')'
  std::size_t body_begin = 0;    ///< offset of '{'
  std::size_t body_end = 0;      ///< offset of the matching '}'
};

/// Indexes every function definition across `files`. Declarations without
/// a body, lambdas, and macro invocations that do not look like
/// definitions are skipped. Results are ordered by (file, body_begin).
std::vector<FunctionDecl> index_functions(const std::vector<Scanned>& files);

/// The innermost indexed function in file `file_index` whose body extent
/// contains `offset`; -1 when the offset is at namespace scope. Local
/// structs' methods nest inside their enclosing function, hence innermost.
int enclosing_function(const std::vector<FunctionDecl>& functions, int file_index,
                       std::size_t offset);

}  // namespace gpumip::lint
