#include "sparse/ordering.hpp"

#include <algorithm>
#include <queue>
#include <set>

namespace gpumip::sparse {

std::vector<std::vector<int>> symmetric_adjacency(const Csr& a) {
  check_arg(a.rows == a.cols, "symmetric_adjacency: square matrix required");
  std::vector<std::set<int>> adj(static_cast<std::size_t>(a.rows));
  for (int r = 0; r < a.rows; ++r) {
    for (int k = a.row_start[static_cast<std::size_t>(r)];
         k < a.row_start[static_cast<std::size_t>(r) + 1]; ++k) {
      const int c = a.col_index[static_cast<std::size_t>(k)];
      if (c == r) continue;
      adj[static_cast<std::size_t>(r)].insert(c);
      adj[static_cast<std::size_t>(c)].insert(r);
    }
  }
  std::vector<std::vector<int>> out(adj.size());
  for (std::size_t i = 0; i < adj.size(); ++i) out[i].assign(adj[i].begin(), adj[i].end());
  return out;
}

std::vector<int> rcm_ordering(const Csr& a) {
  const auto adj = symmetric_adjacency(a);
  const int n = a.rows;
  std::vector<bool> visited(static_cast<std::size_t>(n), false);
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));

  auto degree = [&](int v) { return static_cast<int>(adj[static_cast<std::size_t>(v)].size()); };

  for (int pass = 0; pass < n; ++pass) {
    // Find an unvisited start node of minimum degree (pseudo-peripheral-ish).
    int start = -1;
    for (int v = 0; v < n; ++v) {
      if (!visited[static_cast<std::size_t>(v)] && (start < 0 || degree(v) < degree(start))) {
        start = v;
      }
    }
    if (start < 0) break;
    std::queue<int> frontier;
    frontier.push(start);
    visited[static_cast<std::size_t>(start)] = true;
    while (!frontier.empty()) {
      const int v = frontier.front();
      frontier.pop();
      order.push_back(v);
      std::vector<int> next;
      for (int u : adj[static_cast<std::size_t>(v)]) {
        if (!visited[static_cast<std::size_t>(u)]) {
          visited[static_cast<std::size_t>(u)] = true;
          next.push_back(u);
        }
      }
      std::sort(next.begin(), next.end(), [&](int x, int y) { return degree(x) < degree(y); });
      for (int u : next) frontier.push(u);
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

std::vector<int> min_degree_ordering(const Csr& a) {
  auto adj_list = symmetric_adjacency(a);
  const int n = a.rows;
  std::vector<std::set<int>> adj(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    adj[static_cast<std::size_t>(v)].insert(adj_list[static_cast<std::size_t>(v)].begin(),
                                            adj_list[static_cast<std::size_t>(v)].end());
  }
  std::vector<bool> eliminated(static_cast<std::size_t>(n), false);
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  for (int step = 0; step < n; ++step) {
    int best = -1;
    std::size_t best_deg = 0;
    for (int v = 0; v < n; ++v) {
      if (eliminated[static_cast<std::size_t>(v)]) continue;
      const std::size_t deg = adj[static_cast<std::size_t>(v)].size();
      if (best < 0 || deg < best_deg) {
        best = v;
        best_deg = deg;
      }
    }
    order.push_back(best);
    eliminated[static_cast<std::size_t>(best)] = true;
    // Eliminate: connect remaining neighbours into a clique.
    std::vector<int> nbrs;
    for (int u : adj[static_cast<std::size_t>(best)]) {
      if (!eliminated[static_cast<std::size_t>(u)]) nbrs.push_back(u);
    }
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      auto& ai = adj[static_cast<std::size_t>(nbrs[i])];
      ai.erase(best);
      for (std::size_t j = 0; j < nbrs.size(); ++j) {
        if (i != j) ai.insert(nbrs[j]);
      }
    }
  }
  return order;
}

Csr permute_symmetric(const Csr& a, const std::vector<int>& perm) {
  check_arg(a.rows == a.cols, "permute_symmetric: square matrix required");
  check_arg(static_cast<int>(perm.size()) == a.rows, "permute_symmetric: perm size mismatch");
  std::vector<int> inv(perm.size());
  for (std::size_t k = 0; k < perm.size(); ++k) inv[static_cast<std::size_t>(perm[k])] = static_cast<int>(k);
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<std::size_t>(a.nnz()));
  for (int r = 0; r < a.rows; ++r) {
    for (int k = a.row_start[static_cast<std::size_t>(r)];
         k < a.row_start[static_cast<std::size_t>(r) + 1]; ++k) {
      triplets.push_back({inv[static_cast<std::size_t>(r)],
                          inv[static_cast<std::size_t>(a.col_index[static_cast<std::size_t>(k)])],
                          a.values[static_cast<std::size_t>(k)]});
    }
  }
  return csr_from_triplets(a.rows, a.cols, triplets);
}

int bandwidth(const Csr& a) {
  check_arg(a.rows == a.cols, "bandwidth: square matrix required");
  int band = 0;
  for (int r = 0; r < a.rows; ++r) {
    for (int k = a.row_start[static_cast<std::size_t>(r)];
         k < a.row_start[static_cast<std::size_t>(r) + 1]; ++k) {
      band = std::max(band, std::abs(r - a.col_index[static_cast<std::size_t>(k)]));
    }
  }
  return band;
}

long symbolic_fill(const Csr& a) {
  // Symbolic elimination in natural order on the symmetrized pattern.
  auto adj_list = symmetric_adjacency(a);
  const int n = a.rows;
  std::vector<std::set<int>> adj(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    for (int u : adj_list[static_cast<std::size_t>(v)]) {
      if (u > v) adj[static_cast<std::size_t>(v)].insert(u);
    }
  }
  long fill = 0;
  // Track full future-neighbour sets as we eliminate 0..n-1.
  std::vector<std::set<int>> future = adj;
  for (int v = 0; v < n; ++v) {
    const auto& nbrs = future[static_cast<std::size_t>(v)];
    std::vector<int> ns(nbrs.begin(), nbrs.end());
    for (std::size_t i = 0; i < ns.size(); ++i) {
      for (std::size_t j = i + 1; j < ns.size(); ++j) {
        const int x = std::min(ns[i], ns[j]);
        const int y = std::max(ns[i], ns[j]);
        if (future[static_cast<std::size_t>(x)].insert(y).second) ++fill;
      }
    }
  }
  return fill;
}

}  // namespace gpumip::sparse
