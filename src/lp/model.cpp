#include "lp/model.hpp"

#include <cmath>

namespace gpumip::lp {

int LpModel::add_col(double obj, double lb, double ub, std::string name) {
  check_arg(lb <= ub, "add_col: lb > ub");
  cols_.push_back({obj, lb, ub, std::move(name)});
  return num_cols() - 1;
}

int LpModel::add_row(double lb, double ub, std::string name) {
  check_arg(lb <= ub, "add_row: lb > ub");
  rows_.push_back({lb, ub, std::move(name)});
  return num_rows() - 1;
}

void LpModel::set_coef(int row, int col, double value) {
  check_arg(row >= 0 && row < num_rows(), "set_coef: bad row");
  check_arg(col >= 0 && col < num_cols(), "set_coef: bad col");
  if (value != 0.0) entries_.push_back({row, col, value});
}

int LpModel::add_row_le(const std::vector<Term>& terms, double rhs, std::string name) {
  const int r = add_row(-kInf, rhs, std::move(name));
  for (const auto& [col, coef] : terms) set_coef(r, col, coef);
  return r;
}

int LpModel::add_row_ge(const std::vector<Term>& terms, double rhs, std::string name) {
  const int r = add_row(rhs, kInf, std::move(name));
  for (const auto& [col, coef] : terms) set_coef(r, col, coef);
  return r;
}

int LpModel::add_row_eq(const std::vector<Term>& terms, double rhs, std::string name) {
  const int r = add_row(rhs, rhs, std::move(name));
  for (const auto& [col, coef] : terms) set_coef(r, col, coef);
  return r;
}

int LpModel::add_row_range(const std::vector<Term>& terms, double lb, double ub,
                           std::string name) {
  const int r = add_row(lb, ub, std::move(name));
  for (const auto& [col, coef] : terms) set_coef(r, col, coef);
  return r;
}

sparse::Csr LpModel::matrix() const {
  return sparse::csr_from_triplets(num_rows(), num_cols(), entries_);
}

double LpModel::density() const {
  if (num_rows() == 0 || num_cols() == 0) return 0.0;
  return matrix().density();
}

double LpModel::objective_value(std::span<const double> x) const {
  check_arg(static_cast<int>(x.size()) >= num_cols(), "objective_value: x too short");
  double sum = 0.0;
  for (int j = 0; j < num_cols(); ++j) {
    sum += cols_[static_cast<std::size_t>(j)].obj * x[static_cast<std::size_t>(j)];
  }
  return sum;
}

void LpModel::validate() const {
  for (int j = 0; j < num_cols(); ++j) {
    const auto& c = cols_[static_cast<std::size_t>(j)];
    check_arg(c.lb <= c.ub, "column " + std::to_string(j) + ": lb > ub");
    check_arg(std::isfinite(c.obj), "column " + std::to_string(j) + ": non-finite objective");
  }
  for (int i = 0; i < num_rows(); ++i) {
    const auto& r = rows_[static_cast<std::size_t>(i)];
    check_arg(r.lb <= r.ub, "row " + std::to_string(i) + ": lb > ub");
  }
  for (const auto& t : entries_) {
    check_arg(t.row >= 0 && t.row < num_rows() && t.col >= 0 && t.col < num_cols(),
              "entry out of range");
    check_arg(std::isfinite(t.value), "non-finite coefficient");
  }
}

}  // namespace gpumip::lp
