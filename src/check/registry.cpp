#include "check/registry.hpp"

#include <array>
#include <atomic>

namespace gpumip::check {

namespace {

constexpr int kSubsystems = static_cast<int>(Subsystem::kCount_);

struct Counters {
  std::array<std::atomic<std::uint64_t>, kSubsystems> run{};
  std::array<std::atomic<std::uint64_t>, kSubsystems> failed{};
};

Counters& counters() {
  static Counters instance;
  return instance;
}

}  // namespace

const char* subsystem_name(Subsystem s) noexcept {
  switch (s) {
    case Subsystem::kTree: return "tree";
    case Subsystem::kSnapshot: return "snapshot";
    case Subsystem::kBasis: return "basis";
    case Subsystem::kSparse: return "sparse";
    case Subsystem::kLedger: return "ledger";
    case Subsystem::kMessages: return "messages";
    case Subsystem::kSchedule: return "schedule";
    case Subsystem::kCount_: break;
  }
  return "?";
}

void count_check(Subsystem s) noexcept {
  counters().run[static_cast<std::size_t>(s)].fetch_add(1, std::memory_order_relaxed);
}

void count_failure(Subsystem s) noexcept {
  counters().failed[static_cast<std::size_t>(s)].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t checks_run(Subsystem s) noexcept {
  return counters().run[static_cast<std::size_t>(s)].load(std::memory_order_relaxed);
}

std::uint64_t checks_failed(Subsystem s) noexcept {
  return counters().failed[static_cast<std::size_t>(s)].load(std::memory_order_relaxed);
}

std::uint64_t checks_run_total() noexcept {
  std::uint64_t total = 0;
  for (int i = 0; i < kSubsystems; ++i) {
    total += counters().run[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  return total;
}

void reset_counters() noexcept {
  for (int i = 0; i < kSubsystems; ++i) {
    counters().run[static_cast<std::size_t>(i)].store(0, std::memory_order_relaxed);
    counters().failed[static_cast<std::size_t>(i)].store(0, std::memory_order_relaxed);
  }
}

}  // namespace gpumip::check
