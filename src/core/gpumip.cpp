#include "core/gpumip.hpp"

#include <cmath>

namespace gpumip {

const char* version() noexcept { return "gpumip 1.0.0"; }

Solver::Solver(SolverOptions options) : options_(std::move(options)) {}

SolveReport Solver::solve(const mip::MipModel& model) const {
  model.validate();
  SolveReport report;

  // ---- presolve (host-side setup stage) ----
  const mip::MipModel* working = &model;
  mip::MipModel reduced_model;
  std::optional<lp::PresolveResult> presolved;
  if (options_.presolve) {
    presolved = lp::presolve(model.lp(), model.integer_flags());
    if (presolved->infeasible) {
      report.status = mip::MipStatus::Infeasible;
      return report;
    }
    std::vector<bool> reduced_flags(static_cast<std::size_t>(presolved->reduced.num_cols()),
                                    false);
    for (int j = 0; j < model.num_cols(); ++j) {
      const int mapped = presolved->col_map[static_cast<std::size_t>(j)];
      if (mapped >= 0) reduced_flags[static_cast<std::size_t>(mapped)] = model.is_integer(j);
    }
    reduced_model.reset_lp(presolved->reduced, std::move(reduced_flags));
    report.presolve_rows_removed = presolved->rows_removed;
    report.presolve_cols_removed = presolved->cols_removed;
    working = &reduced_model;
  }

  // ---- LP code-path decision (paper section 5.4) ----
  const sparse::Csr matrix = working->lp().matrix();
  switch (options_.lp_backend) {
    case LpBackend::Auto: report.lp_path = lp::choose_path(matrix); break;
    case LpBackend::DenseGpu: report.lp_path = lp::CodePath::DenseGpu; break;
    case LpBackend::SparseHybrid: report.lp_path = lp::CodePath::SparseHybrid; break;
  }

  // ---- solve ----
  if (options_.workers > 0) {
    parallel::SupervisorOptions sup = options_.supervisor;
    sup.workers = options_.workers;
    sup.mip = options_.mip;
    parallel::SupervisorResult sr = parallel::solve_supervised(*working, sup);
    report.parallel_makespan = sr.makespan;
    report.worker_nodes = sr.worker_nodes;
    report.status = sr.result.status;
    report.has_solution = sr.result.has_solution;
    report.objective = sr.result.objective;
    report.bound = sr.result.bound;
    report.stats = sr.result.stats;
    if (report.has_solution) report.x = sr.result.x;
  } else {
    parallel::StrategyConfig cfg;
    cfg.device = options_.device;
    cfg.devices = options_.devices;
    cfg.mip = options_.mip;
    cfg.cpu = options_.cpu;
    parallel::StrategyReport sr = parallel::run_strategy(options_.strategy, *working, cfg);
    report.status = sr.result.status;
    report.has_solution = sr.result.has_solution;
    report.objective = sr.result.objective;
    report.bound = sr.result.bound;
    report.gap = sr.result.gap();
    report.stats = sr.result.stats;
    report.anatomy = sr.result.stats.anatomy;
    report.sim_seconds = sr.sim_seconds;
    report.device_seconds = sr.device_seconds;
    report.host_seconds = sr.host_seconds;
    report.bytes_transferred = sr.bytes_h2d + sr.bytes_d2h;
    report.device_peak_bytes = sr.device_peak_bytes;
    report.strategy_completed = sr.completed;
    report.strategy_failure = sr.failure;
    if (report.has_solution) report.x = sr.result.x;
  }

  // ---- postsolve ----
  if (report.has_solution && presolved.has_value()) {
    report.x = presolved->postsolve(report.x);
    // Objective of the full model (fixed columns contribute).
    report.objective = model.lp().objective_value(report.x);
  }
  return report;
}

SolveReport Solver::solve_mps_file(const std::string& path) const {
  return solve(problems::read_mps_file(path));
}

}  // namespace gpumip
